//! Sparse tiles: CSR / COO representations and skip-zero kernels.
//!
//! The paper's §3.4 tiled-relational representation assumes dense blocks,
//! but graph and ML workloads are overwhelmingly sparse — an edge table
//! over a million nodes fills well under 0.1% of its adjacency matrix.
//! This module adds a compressed-sparse-row tile ([`SparseMatrix`]) and a
//! COO staging builder ([`CooBuilder`]) so those tiles store, ship and
//! multiply only their nonzeros.
//!
//! ## Float-summation-order contract
//!
//! Every kernel here accumulates each output element over `k` in ascending
//! index order — the same per-element order as the dense blocked kernels
//! in [`crate::gemm`]. A skipped implicit zero contributes exactly the
//! `0.0 * x` term the dense loop would have added, which cannot change a
//! finite accumulator (`+0.0` is the additive identity up to the sign of
//! zero, and `-0.0 == 0.0`). Sparse results therefore compare `==` to
//! their dense counterparts for finite inputs; the differential suites
//! assert exactly that. The one documented exception is non-finite data:
//! `0.0 * inf = NaN` in the dense loop but is skipped here.
//!
//! ## Duplicate and out-of-bounds semantics
//!
//! [`CooBuilder`] *sums* duplicate coordinates in arrival order (matching
//! the paper's tile-aggregate construction, where a tile is the SUM of its
//! per-tuple contributions) and rejects out-of-bounds or negative indices
//! with a typed [`LaError`] instead of panicking.

use crate::error::{LaError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// A compressed-sparse-row (CSR) matrix tile.
///
/// `indptr` has `rows + 1` entries; row `i`'s nonzeros live at
/// `indptr[i]..indptr[i+1]` in `indices` (column ids, strictly increasing
/// within a row) and `values`. Column indices are `u32` — a tile side of
/// four billion is far beyond anything a single tile should hold.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An empty (all-implicit-zero) `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix { rows, cols, indptr: vec![0; rows + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Builds from raw CSR parts, validating every invariant. This is the
    /// entry point for decoded wire frames, so it must reject hostile
    /// inputs with typed errors rather than index panics downstream.
    pub fn from_csr(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 || indptr.first() != Some(&0) {
            return Err(LaError::InvalidConstruction {
                reason: format!("CSR indptr length {} for {rows} rows", indptr.len()),
            });
        }
        if indices.len() != values.len() || indptr[rows] != indices.len() {
            return Err(LaError::InvalidConstruction {
                reason: format!(
                    "CSR nnz mismatch: indptr ends at {}, {} indices, {} values",
                    indptr[rows],
                    indices.len(),
                    values.len()
                ),
            });
        }
        for r in 0..rows {
            let (lo, hi) = (indptr[r], indptr[r + 1]);
            if lo > hi {
                return Err(LaError::InvalidConstruction {
                    reason: format!("CSR indptr not monotone at row {r}"),
                });
            }
            let mut prev: Option<u32> = None;
            for &c in &indices[lo..hi] {
                if c as usize >= cols {
                    return Err(LaError::OutOfBounds {
                        op: "sparse_from_csr",
                        index: (r, c as usize),
                        shape: (rows, cols),
                    });
                }
                if prev.is_some_and(|p| p >= c) {
                    return Err(LaError::InvalidConstruction {
                        reason: format!("CSR column indices not strictly increasing in row {r}"),
                    });
                }
                prev = Some(c);
            }
        }
        Ok(SparseMatrix { rows, cols, indptr, indices, values })
    }

    /// Converts a dense tile, dropping elements that compare equal to zero.
    pub fn from_dense(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let data = m.as_slice();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        SparseMatrix { rows, cols, indptr, indices, values }
    }

    /// Materializes the dense equivalent (implicit zeros become `+0.0`).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let data = out.as_mut_slice();
        for r in 0..self.rows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                data[r * self.cols + self.indices[idx] as usize] = self.values[idx];
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (explicit zeros from summed duplicates count).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored-entry fraction, `nnz / (rows·cols)`; `0.0` for empty shapes.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 { 0.0 } else { self.nnz() as f64 / cells as f64 }
    }

    /// Raw CSR parts `(indptr, indices, values)` — for the wire codec.
    pub fn csr_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.indptr, &self.indices, &self.values)
    }

    /// Element at `(r, c)`, `0.0` when not stored.
    pub fn get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows || c >= self.cols {
            return Err(LaError::OutOfBounds {
                op: "sparse_get",
                index: (r, c),
                shape: (self.rows, self.cols),
            });
        }
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        Ok(match self.indices[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => 0.0,
        })
    }

    /// Iterates stored entries as `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.indptr[r]..self.indptr[r + 1])
                .map(move |i| (r, self.indices[i] as usize, self.values[i]))
        })
    }

    /// In-memory footprint of the three CSR arrays, in bytes. This is what
    /// the memory governor and the planner's row-byte estimates see, so
    /// sparse tiles are priced by nnz, not `rows × cols`.
    pub fn byte_size(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Sum of all stored entries.
    pub fn sum_elements(&self) -> f64 {
        self.values.iter().sum()
    }

    /// CSR transpose via a counting sort over column ids — `O(nnz + cols)`.
    pub fn transpose(&self) -> SparseMatrix {
        let mut ptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            ptr[i + 1] += ptr[i];
        }
        let mut cursor = ptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for r in 0..self.rows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[idx] as usize;
                let dst = cursor[c];
                cursor[c] += 1;
                indices[dst] = r as u32;
                values[dst] = self.values[idx];
            }
        }
        SparseMatrix { rows: self.cols, cols: self.rows, indptr: ptr, indices, values }
    }

    /// Sparse matrix × dense vector (SpMV): `y = self · x`.
    ///
    /// Each `y[i]` accumulates over ascending `k`, matching the dense
    /// row-dot-product order bit for bit (finite inputs).
    pub fn spmv(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LaError::DimMismatch {
                op: "spmv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        let mut y = vec![0.0f64; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.indptr[r]..self.indptr[r + 1] {
                acc += self.values[idx] * xs[self.indices[idx] as usize];
            }
            *out = acc;
        }
        Ok(Vector::from_vec(y))
    }

    /// Sparse × dense GEMM: `C = self · b`, dense output.
    ///
    /// Row-major streaming: for each stored `a[i,k]`, fuse over `b`'s row
    /// `k` — unit stride on both `b` and `c`, ascending `k` per output
    /// element (the dense kernel's accumulation order).
    pub fn multiply_dense(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.cols {
            return Err(LaError::DimMismatch {
                op: "sparse_matrix_multiply",
                lhs: (self.rows, self.cols),
                rhs: b.shape(),
            });
        }
        let n = b.cols();
        let bd = b.as_slice();
        let mut out = Matrix::zeros(self.rows, n);
        let od = out.as_mut_slice();
        for r in 0..self.rows {
            let out_row = &mut od[r * n..(r + 1) * n];
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let a = self.values[idx];
                let k = self.indices[idx] as usize;
                let b_row = &bd[k * n..(k + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * bv;
                }
            }
        }
        Ok(out)
    }

    /// Sparse × sparse GEMM (SpGEMM): `C = self · b`, sparse output.
    ///
    /// Gustavson's row algorithm with a dense sparse-accumulator (SPA)
    /// scratch per output row; output columns are emitted sorted, so each
    /// element's terms still accumulate in ascending `k`.
    pub fn multiply_sparse(&self, b: &SparseMatrix) -> Result<SparseMatrix> {
        if b.rows != self.cols {
            return Err(LaError::DimMismatch {
                op: "spgemm",
                lhs: (self.rows, self.cols),
                rhs: (b.rows, b.cols),
            });
        }
        let n = b.cols;
        let mut spa = vec![0.0f64; n];
        let mut occupied = vec![false; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..self.rows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let a = self.values[idx];
                let k = self.indices[idx] as usize;
                for bidx in b.indptr[k]..b.indptr[k + 1] {
                    let c = b.indices[bidx] as usize;
                    spa[c] += a * b.values[bidx];
                    if !occupied[c] {
                        occupied[c] = true;
                        touched.push(c as u32);
                    }
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                indices.push(c);
                values.push(spa[c as usize]);
                spa[c as usize] = 0.0;
                occupied[c as usize] = false;
            }
            touched.clear();
            indptr.push(indices.len());
        }
        Ok(SparseMatrix { rows: self.rows, cols: b.cols, indptr, indices, values })
    }

    /// Sparse SYRK: the Gram matrix `selfᵀ · self`, dense output (Gram
    /// matrices of interesting feature sets are dense).
    ///
    /// Mirrors [`crate::gemm::syrk_t_pooled`]'s order — input rows
    /// outermost, upper triangle accumulated then mirrored — so results
    /// are bit-identical to the dense kernel on finite data.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        let od = out.as_mut_slice();
        for r in 0..self.rows {
            let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
            for i in lo..hi {
                let p = self.indices[i] as usize;
                let v = self.values[i];
                for j in i..hi {
                    od[p * n + self.indices[j] as usize] += v * self.values[j];
                }
            }
        }
        for p in 0..n {
            for q in (p + 1)..n {
                od[q * n + p] = od[p * n + q];
            }
        }
        out
    }

    /// Element-wise combine with another sparse matrix via a row merge.
    /// `f` receives `(a, b)` with `0.0` standing in for an absent entry;
    /// entries where both sides are absent stay implicit.
    fn merge_with(&self, other: &SparseMatrix, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<SparseMatrix> {
        if self.shape() != other.shape() {
            return Err(LaError::DimMismatch { op, lhs: self.shape(), rhs: other.shape() });
        }
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..self.rows {
            let (mut i, ihi) = (self.indptr[r], self.indptr[r + 1]);
            let (mut j, jhi) = (other.indptr[r], other.indptr[r + 1]);
            while i < ihi || j < jhi {
                let ci = if i < ihi { self.indices[i] } else { u32::MAX };
                let cj = if j < jhi { other.indices[j] } else { u32::MAX };
                let (c, v) = if ci < cj {
                    let v = f(self.values[i], 0.0);
                    i += 1;
                    (ci, v)
                } else if cj < ci {
                    let v = f(0.0, other.values[j]);
                    j += 1;
                    (cj, v)
                } else {
                    let v = f(self.values[i], other.values[j]);
                    i += 1;
                    j += 1;
                    (ci, v)
                };
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(SparseMatrix { rows: self.rows, cols: self.cols, indptr, indices, values })
    }

    /// Adds this matrix into a dense accumulator in O(nnz) — the hot path
    /// of a distributed `SUM` over sparse tiles.
    pub fn add_to_dense(&self, out: &mut Matrix) -> Result<()> {
        if out.shape() != self.shape() {
            return Err(LaError::DimMismatch {
                op: "matrix_sum",
                lhs: self.shape(),
                rhs: out.shape(),
            });
        }
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for k in self.indptr[r]..self.indptr[r + 1] {
                row[self.indices[k] as usize] += self.values[k];
            }
        }
        Ok(())
    }

    /// Element-wise sum; stays sparse.
    pub fn add(&self, other: &SparseMatrix) -> Result<SparseMatrix> {
        self.merge_with(other, "sparse_add", |a, b| a + b)
    }

    /// Element-wise difference; stays sparse.
    pub fn sub(&self, other: &SparseMatrix) -> Result<SparseMatrix> {
        self.merge_with(other, "sparse_sub", |a, b| a - b)
    }

    /// Hadamard product; only coordinates stored on *both* sides can be
    /// nonzero, but we keep the union pattern (`x * 0.0` entries) so the
    /// result is exactly what the dense loop computes even for signed
    /// zeros.
    pub fn hadamard(&self, other: &SparseMatrix) -> Result<SparseMatrix> {
        self.merge_with(other, "sparse_mul", |a, b| a * b)
    }

    /// Hadamard product against a dense matrix; only stored coordinates
    /// survive (implicit zeros annihilate under `×` on finite data).
    pub fn hadamard_dense(&self, m: &Matrix) -> Result<SparseMatrix> {
        if self.shape() != m.shape() {
            return Err(LaError::DimMismatch {
                op: "sparse_mul",
                lhs: self.shape(),
                rhs: m.shape(),
            });
        }
        let md = m.as_slice();
        let mut out = self.clone();
        for r in 0..self.rows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                out.values[idx] *= md[r * self.cols + self.indices[idx] as usize];
            }
        }
        Ok(out)
    }

    /// Applies `f` to every stored entry (implicit zeros are untouched, so
    /// `f` must map `0.0` to `±0.0` for dense parity — scaling and
    /// division by a nonzero scalar qualify).
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> SparseMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Scales every stored entry.
    pub fn scalar_mul(&self, s: f64) -> SparseMatrix {
        self.map_values(|v| v * s)
    }
}

/// COO staging area for building a [`SparseMatrix`] from an edge table.
///
/// Entries arrive in any order; [`CooBuilder::build`] sorts them
/// (stably, so duplicates keep arrival order), **sums** duplicate
/// coordinates, and produces canonical CSR.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    entries: Vec<(u32, u32, f64)>,
    /// Maximum row/col seen, for dimension inference.
    max_row: Option<u32>,
    max_col: Option<u32>,
}

impl CooBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        CooBuilder::default()
    }

    /// Number of staged entries (before duplicate folding).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stages one `(row, col, value)` entry. Negative or over-large
    /// indices are a typed error — never a panic, because these come
    /// straight from user data in the edge table.
    pub fn push(&mut self, row: i64, col: i64, value: f64) -> Result<()> {
        let (r, c) = Self::check_coord(row, col)?;
        self.max_row = Some(self.max_row.map_or(r, |m| m.max(r)));
        self.max_col = Some(self.max_col.map_or(c, |m| m.max(c)));
        self.entries.push((r, c, value));
        Ok(())
    }

    fn check_coord(row: i64, col: i64) -> Result<(u32, u32)> {
        if row < 0 || col < 0 {
            return Err(LaError::InvalidConstruction {
                reason: format!("matrix entry at negative coordinate ({row}, {col})"),
            });
        }
        if row > u32::MAX as i64 || col > u32::MAX as i64 {
            return Err(LaError::InvalidConstruction {
                reason: format!("matrix entry coordinate ({row}, {col}) exceeds the 2^32-1 tile limit"),
            });
        }
        Ok((row as u32, col as u32))
    }

    /// Merges another builder's staged entries (exchange partial merge).
    pub fn merge(&mut self, other: &CooBuilder) {
        self.entries.extend_from_slice(&other.entries);
        self.max_row = match (self.max_row, other.max_row) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.max_col = match (self.max_col, other.max_col) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Staged entries as parallel `(rows, cols, values)` arrays — the
    /// nnz-proportional partial-aggregate state shipped over exchanges.
    pub fn parts(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rows = Vec::with_capacity(self.entries.len());
        let mut cols = Vec::with_capacity(self.entries.len());
        let mut vals = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            rows.push(r as f64);
            cols.push(c as f64);
            vals.push(v);
        }
        (rows, cols, vals)
    }

    /// Builds with dimensions inferred as `max index + 1` on each axis.
    pub fn build_inferred(self) -> SparseMatrix {
        let rows = self.max_row.map_or(0, |m| m as usize + 1);
        let cols = self.max_col.map_or(0, |m| m as usize + 1);
        self.build(rows, cols).expect("inferred dims cover every staged entry")
    }

    /// Builds an explicit `rows × cols` matrix. Entries outside the given
    /// shape are a typed out-of-bounds error. Duplicate coordinates are
    /// summed in arrival order.
    pub fn build(mut self, rows: usize, cols: usize) -> Result<SparseMatrix> {
        for &(r, c, _) in &self.entries {
            if r as usize >= rows || c as usize >= cols {
                return Err(LaError::OutOfBounds {
                    op: "matrix_from_entries",
                    index: (r as usize, c as usize),
                    shape: (rows, cols),
                });
            }
        }
        // Stable sort keeps duplicate coordinates in arrival order, so the
        // duplicate sum below is deterministic left-to-right.
        self.entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &self.entries {
            if last == Some((r, c)) {
                *values.last_mut().expect("duplicate follows an entry") += v;
            } else {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1; // per-row count, prefix-summed below
                last = Some((r, c));
            }
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        SparseMatrix::from_csr(rows, cols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_naive, syrk_t_pooled};

    fn rngish(seed: u64, len: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 2000) as f64 - 1000.0) / 250.0
            })
            .collect()
    }

    /// Dense matrix with roughly `density` fraction of nonzeros.
    fn sparse_dense(seed: u64, rows: usize, cols: usize, density: f64) -> Matrix {
        let raw = rngish(seed, rows * cols);
        let gate = rngish(seed.wrapping_mul(31) | 7, rows * cols);
        let data: Vec<f64> = raw
            .iter()
            .zip(gate.iter())
            .map(|(&v, &g)| if (g + 4.0) / 8.0 < density { v } else { 0.0 })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn dense_roundtrip() {
        let m = sparse_dense(3, 17, 23, 0.1);
        let s = SparseMatrix::from_dense(&m);
        assert_eq!(s.to_dense().as_slice(), m.as_slice());
        assert!(s.density() < 0.25, "density {}", s.density());
        assert!(s.byte_size() < m.byte_size());
    }

    #[test]
    fn coo_duplicates_sum_in_arrival_order() {
        let mut b = CooBuilder::new();
        b.push(0, 0, 1.0).unwrap();
        b.push(1, 2, 5.0).unwrap();
        b.push(0, 0, 2.5).unwrap();
        b.push(0, 0, -0.5).unwrap();
        let s = b.build(2, 3).unwrap();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(0, 0).unwrap(), (1.0 + 2.5) + -0.5);
        assert_eq!(s.get(1, 2).unwrap(), 5.0);
    }

    #[test]
    fn coo_out_of_bounds_is_typed_error() {
        let mut b = CooBuilder::new();
        assert!(matches!(
            b.push(-1, 0, 1.0),
            Err(LaError::InvalidConstruction { .. })
        ));
        assert!(matches!(
            b.push(0, -7, 1.0),
            Err(LaError::InvalidConstruction { .. })
        ));
        b.push(5, 5, 1.0).unwrap();
        assert!(matches!(
            b.build(3, 3),
            Err(LaError::OutOfBounds { op: "matrix_from_entries", .. })
        ));
    }

    #[test]
    fn coo_inferred_dims_and_empty_rows() {
        let mut b = CooBuilder::new();
        b.push(4, 1, 2.0).unwrap();
        b.push(0, 3, 1.0).unwrap();
        let s = b.build_inferred();
        assert_eq!(s.shape(), (5, 4));
        assert_eq!(s.get(2, 2).unwrap(), 0.0); // empty middle row
        assert_eq!(s.get(4, 1).unwrap(), 2.0);
        assert_eq!(CooBuilder::new().build_inferred().shape(), (0, 0));
    }

    #[test]
    fn from_csr_rejects_hostile_input() {
        // Column out of range.
        assert!(SparseMatrix::from_csr(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Unsorted columns within a row.
        assert!(SparseMatrix::from_csr(1, 4, vec![0, 2], vec![3, 1], vec![1.0, 2.0]).is_err());
        // indptr / nnz mismatch.
        assert!(SparseMatrix::from_csr(1, 4, vec![0, 2], vec![1], vec![1.0]).is_err());
        // Non-monotone indptr.
        assert!(SparseMatrix::from_csr(2, 4, vec![0, 2, 1], vec![0, 1, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn spmv_matches_dense_bitwise() {
        for density in [0.001, 0.01, 0.1, 0.5] {
            let m = sparse_dense(11, 60, 80, density);
            let s = SparseMatrix::from_dense(&m);
            let x = Vector::from_vec(rngish(5, 80));
            let dense_y = m.matrix_vector_multiply(&x).unwrap();
            let sparse_y = s.spmv(&x).unwrap();
            assert_eq!(dense_y.as_slice(), sparse_y.as_slice(), "density {density}");
        }
        assert!(SparseMatrix::zeros(3, 4).spmv(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn sparse_dense_gemm_matches_naive() {
        for density in [0.01, 0.1, 0.5] {
            let a = sparse_dense(21, 40, 50, density);
            let b = Matrix::from_vec(50, 30, rngish(22, 50 * 30)).unwrap();
            let s = SparseMatrix::from_dense(&a);
            let fast = s.multiply_dense(&b).unwrap();
            let slow = gemm_naive(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-9), "density {density}");
        }
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sparse_dense(31, 30, 40, 0.08);
        let b = sparse_dense(32, 40, 25, 0.12);
        let sa = SparseMatrix::from_dense(&a);
        let sb = SparseMatrix::from_dense(&b);
        let sc = sa.multiply_sparse(&sb).unwrap();
        let dense = gemm_naive(&a, &b);
        assert!(sc.to_dense().approx_eq(&dense, 1e-9));
        assert!(sa.multiply_sparse(&SparseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn sparse_gram_matches_dense_syrk_bitwise() {
        let a = sparse_dense(41, 50, 35, 0.1);
        let s = SparseMatrix::from_dense(&a);
        let pool = lardb_pool::WorkerPool::new(1);
        let dense = syrk_t_pooled(&pool, &a);
        let sparse = s.gram();
        assert_eq!(dense.as_slice(), sparse.as_slice());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sparse_dense(51, 13, 29, 0.2);
        let s = SparseMatrix::from_dense(&m);
        let t = s.transpose();
        assert_eq!(t.shape(), (29, 13));
        assert_eq!(t.to_dense().as_slice(), m.transpose().as_slice());
        assert_eq!(t.transpose().to_dense().as_slice(), m.as_slice());
    }

    #[test]
    fn elementwise_merge_matches_dense() {
        let a = sparse_dense(61, 20, 20, 0.15);
        let b = sparse_dense(62, 20, 20, 0.15);
        let (sa, sb) = (SparseMatrix::from_dense(&a), SparseMatrix::from_dense(&b));
        assert_eq!(sa.add(&sb).unwrap().to_dense().as_slice(), a.add(&b).unwrap().as_slice());
        assert_eq!(sa.sub(&sb).unwrap().to_dense().as_slice(), a.sub(&b).unwrap().as_slice());
        assert_eq!(
            sa.hadamard(&sb).unwrap().to_dense().as_slice(),
            a.mul(&b).unwrap().as_slice()
        );
        assert_eq!(
            sa.scalar_mul(-2.0).to_dense().as_slice(),
            a.scalar_mul(-2.0).as_slice()
        );
        assert!(sa.add(&SparseMatrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn builder_merge_is_order_preserving() {
        let mut a = CooBuilder::new();
        a.push(0, 0, 1.0).unwrap();
        let mut b = CooBuilder::new();
        b.push(0, 0, 2.0).unwrap();
        b.push(3, 1, 4.0).unwrap();
        a.merge(&b);
        let s = a.build_inferred();
        assert_eq!(s.shape(), (4, 2));
        assert_eq!(s.get(0, 0).unwrap(), 3.0);
        assert_eq!(s.nnz(), 2);
    }
}
