//! The three construction aggregates of §3.3: `VECTORIZE`, `ROWMATRIX` and
//! `COLMATRIX`.
//!
//! These are *aggregate* functions in the SQL extension: they fold a group
//! of labeled scalars (resp. labeled vectors) into a single vector (resp.
//! matrix). Per the paper, "holes" — positions for which no input arrived —
//! are set to zero, and the result is sized by the largest label seen.
//!
//! ## Label base
//!
//! The paper's prose says the vector length equals "the largest label of any
//! entry", while its own block-building code produces labels `0..999`
//! (`x.id - ind.mi*1000`). We resolve the ambiguity the way the code demands:
//! labels are **0-based positions**, and the result has `max_label + 1`
//! entries. Negative labels (including the −1 default) are rejected.

use crate::error::{LaError, Result};
use crate::labeled::LabeledScalar;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Accumulator for the `VECTORIZE` aggregate: builds a [`Vector`] from
/// [`LabeledScalar`] inputs.
///
/// ```
/// use lardb_la::{LabeledScalar, VectorizeBuilder};
/// let mut b = VectorizeBuilder::new();
/// b.push(LabeledScalar::new(9.0, 2)).unwrap();
/// b.push(LabeledScalar::new(1.0, 0)).unwrap();
/// assert_eq!(b.finish().as_slice(), &[1.0, 0.0, 9.0]); // holes are zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct VectorizeBuilder {
    entries: Vec<(i64, f64)>,
    max_label: i64,
}

impl VectorizeBuilder {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        VectorizeBuilder { entries: Vec::new(), max_label: -1 }
    }

    /// Folds one labeled scalar into the accumulator.
    pub fn push(&mut self, s: LabeledScalar) -> Result<()> {
        if s.label < 0 {
            return Err(LaError::InvalidConstruction {
                reason: format!("VECTORIZE: negative label {}", s.label),
            });
        }
        self.max_label = self.max_label.max(s.label);
        self.entries.push((s.label, s.value));
        Ok(())
    }

    /// Merges another accumulator (for partitioned / two-phase aggregation).
    pub fn merge(&mut self, other: VectorizeBuilder) {
        self.max_label = self.max_label.max(other.max_label);
        self.entries.extend(other.entries);
    }

    /// Number of values folded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The raw `(label, value)` pairs folded so far, in arrival order.
    /// Used by two-phase aggregation to ship partial state.
    pub fn entries(&self) -> &[(i64, f64)] {
        &self.entries
    }

    /// True when nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finishes the aggregate. Holes are zero; later duplicates of the same
    /// label overwrite earlier ones (group order), matching SimSQL.
    pub fn finish(self) -> Vector {
        let len = (self.max_label + 1).max(0) as usize;
        let mut v = Vector::zeros(len);
        for (label, value) in self.entries {
            v.as_mut_slice()[label as usize] = value;
        }
        v
    }
}

/// Accumulator shared by the `ROWMATRIX` and `COLMATRIX` aggregates: builds
/// a [`Matrix`] from labeled [`Vector`]s, using each vector's label as its
/// row (resp. column) position.
#[derive(Debug, Clone)]
pub struct RowMatrixBuilder {
    vectors: Vec<(i64, Vector)>,
    max_label: i64,
    width: Option<usize>,
}

impl RowMatrixBuilder {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        RowMatrixBuilder { vectors: Vec::new(), max_label: -1, width: None }
    }

    /// Folds one labeled vector. All vectors in a group must share one
    /// length; the first vector fixes it.
    pub fn push(&mut self, v: Vector) -> Result<()> {
        if v.label() < 0 {
            return Err(LaError::InvalidConstruction {
                reason: format!("ROWMATRIX/COLMATRIX: negative label {}", v.label()),
            });
        }
        match self.width {
            None => self.width = Some(v.len()),
            Some(w) if w != v.len() => {
                return Err(LaError::DimMismatch {
                    op: "rowmatrix",
                    lhs: (w, 1),
                    rhs: (v.len(), 1),
                })
            }
            Some(_) => {}
        }
        self.max_label = self.max_label.max(v.label());
        self.vectors.push((v.label(), v));
        Ok(())
    }

    /// Merges another accumulator (two-phase aggregation support).
    pub fn merge(&mut self, other: RowMatrixBuilder) -> Result<()> {
        for (_, v) in other.vectors {
            self.push(v)?;
        }
        Ok(())
    }

    /// Number of vectors folded so far.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// The raw `(label, vector)` pairs folded so far, in arrival order.
    /// Used by two-phase aggregation to ship partial state.
    pub fn entries(&self) -> &[(i64, Vector)] {
        &self.vectors
    }

    /// True when nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Finishes as `ROWMATRIX`: vector with label `i` becomes row `i`.
    pub fn finish_rows(self) -> Matrix {
        let rows = (self.max_label + 1).max(0) as usize;
        let cols = self.width.unwrap_or(0);
        let mut m = Matrix::zeros(rows, cols);
        for (label, v) in self.vectors {
            m.row_mut(label as usize).copy_from_slice(v.as_slice());
        }
        m
    }

    /// Finishes as `COLMATRIX`: vector with label `j` becomes column `j`.
    pub fn finish_cols(self) -> Matrix {
        let cols = (self.max_label + 1).max(0) as usize;
        let rows = self.width.unwrap_or(0);
        let mut m = Matrix::zeros(rows, cols);
        for (label, v) in self.vectors {
            let j = label as usize;
            for (i, &x) in v.as_slice().iter().enumerate() {
                m.as_mut_slice()[i * cols + j] = x;
            }
        }
        m
    }
}

/// Alias so call sites can say [`ColMatrixBuilder`] for intent; the
/// accumulator is shared and only `finish_*` differs.
pub type ColMatrixBuilder = RowMatrixBuilder;

impl Default for RowMatrixBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorize_places_by_label_with_holes() {
        let mut b = VectorizeBuilder::new();
        b.push(LabeledScalar::new(5.0, 2)).unwrap();
        b.push(LabeledScalar::new(1.0, 0)).unwrap();
        let v = b.finish();
        assert_eq!(v.as_slice(), &[1.0, 0.0, 5.0]);
    }

    #[test]
    fn vectorize_rejects_negative_label() {
        let mut b = VectorizeBuilder::new();
        assert!(b.push(LabeledScalar::new(1.0, -1)).is_err());
    }

    #[test]
    fn vectorize_empty_gives_empty_vector() {
        assert_eq!(VectorizeBuilder::new().finish().len(), 0);
    }

    #[test]
    fn vectorize_duplicate_label_last_wins() {
        let mut b = VectorizeBuilder::new();
        b.push(LabeledScalar::new(1.0, 0)).unwrap();
        b.push(LabeledScalar::new(9.0, 0)).unwrap();
        assert_eq!(b.finish().as_slice(), &[9.0]);
    }

    #[test]
    fn vectorize_merge_combines_partials() {
        let mut a = VectorizeBuilder::new();
        a.push(LabeledScalar::new(1.0, 0)).unwrap();
        let mut b = VectorizeBuilder::new();
        b.push(LabeledScalar::new(2.0, 3)).unwrap();
        a.merge(b);
        assert_eq!(a.finish().as_slice(), &[1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn rowmatrix_assembles_rows() {
        let mut b = RowMatrixBuilder::new();
        b.push(Vector::from_slice(&[1.0, 2.0]).with_label(1)).unwrap();
        b.push(Vector::from_slice(&[3.0, 4.0]).with_label(0)).unwrap();
        let m = b.finish_rows();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn rowmatrix_hole_rows_are_zero() {
        let mut b = RowMatrixBuilder::new();
        b.push(Vector::from_slice(&[1.0]).with_label(2)).unwrap();
        let m = b.finish_rows();
        assert_eq!(m.shape(), (3, 1));
        assert_eq!(m.row(0), &[0.0]);
        assert_eq!(m.row(2), &[1.0]);
    }

    #[test]
    fn colmatrix_assembles_columns() {
        let mut b: ColMatrixBuilder = RowMatrixBuilder::new();
        b.push(Vector::from_slice(&[1.0, 2.0]).with_label(0)).unwrap();
        b.push(Vector::from_slice(&[3.0, 4.0]).with_label(1)).unwrap();
        let m = b.finish_cols();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 1).unwrap(), 3.0);
        assert_eq!(m.get(1, 0).unwrap(), 2.0);
    }

    #[test]
    fn rowmatrix_rejects_mixed_widths_and_unlabeled() {
        let mut b = RowMatrixBuilder::new();
        b.push(Vector::zeros(2).with_label(0)).unwrap();
        assert!(b.push(Vector::zeros(3).with_label(1)).is_err());
        // default label is -1 => rejected
        assert!(b.push(Vector::zeros(2)).is_err());
    }

    #[test]
    fn rowmatrix_merge() {
        let mut a = RowMatrixBuilder::new();
        a.push(Vector::from_slice(&[1.0]).with_label(0)).unwrap();
        let mut b = RowMatrixBuilder::new();
        b.push(Vector::from_slice(&[2.0]).with_label(1)).unwrap();
        a.merge(b).unwrap();
        let m = a.finish_rows();
        assert_eq!(m.shape(), (2, 1));
        assert_eq!(m.get(1, 0).unwrap(), 2.0);
    }

    #[test]
    fn empty_builders() {
        assert!(RowMatrixBuilder::new().is_empty());
        assert_eq!(RowMatrixBuilder::new().finish_rows().shape(), (0, 0));
        assert_eq!(RowMatrixBuilder::new().finish_cols().shape(), (0, 0));
        assert!(VectorizeBuilder::new().is_empty());
    }
}
