//! Property-based tests over the linear-algebra kernel's core invariants.

use lardb_la::{LabeledScalar, Matrix, RowMatrixBuilder, Vector, VectorizeBuilder};
use proptest::prelude::*;

/// Strategy: a matrix with dimensions in [1, maxdim] and entries in a
/// numerically tame range.
fn matrix(maxdim: usize) -> impl Strategy<Value = Matrix> {
    (1..=maxdim, 1..=maxdim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: square matrix.
fn square(maxdim: usize) -> impl Strategy<Value = Matrix> {
    (1..=maxdim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).unwrap())
    })
}

fn vector(len: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0f64..10.0, len).prop_map(Vector::from_vec)
}

/// Strategy: a multiplication-compatible chain A (m×k), B (k×n), C (n×p).
fn chain3(maxdim: usize) -> impl Strategy<Value = (Matrix, Matrix, Matrix)> {
    (1..=maxdim, 1..=maxdim, 1..=maxdim, 1..=maxdim).prop_flat_map(|(m, k, n, pp)| {
        (
            proptest::collection::vec(-10.0f64..10.0, m * k),
            proptest::collection::vec(-10.0f64..10.0, k * n),
            proptest::collection::vec(-10.0f64..10.0, n * pp),
        )
            .prop_map(move |(a, b, c)| {
                (
                    Matrix::from_vec(m, k, a).unwrap(),
                    Matrix::from_vec(k, n, b).unwrap(),
                    Matrix::from_vec(n, pp, c).unwrap(),
                )
            })
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(12)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_distributes_over_product((a, b, _) in chain3(8)) {
        let lhs = a.multiply(&b).unwrap().transpose();
        let rhs = b.transpose().multiply(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn matmul_is_associative((a, b, c) in chain3(6)) {
        let l = a.multiply(&b).unwrap().multiply(&c).unwrap();
        let r = a.multiply(&b.multiply(&c).unwrap()).unwrap();
        prop_assert!(l.approx_eq(&r, 1e-6));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b, _) in chain3(6), scale in -3.0f64..3.0) {
        let c = b.scalar_mul(scale); // same shape as b by construction
        let l = a.multiply(&b.add(&c).unwrap()).unwrap();
        let r = a.multiply(&b).unwrap().add(&a.multiply(&c).unwrap()).unwrap();
        prop_assert!(l.approx_eq(&r, 1e-7));
    }

    #[test]
    fn identity_is_neutral(m in matrix(10)) {
        let li = Matrix::identity(m.rows()).multiply(&m).unwrap();
        let ri = m.multiply(&Matrix::identity(m.cols())).unwrap();
        prop_assert!(li.approx_eq(&m, 1e-12));
        prop_assert!(ri.approx_eq(&m, 1e-12));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(m in matrix(8)) {
        let g = m.gram();
        prop_assert!(lardb_la::chol::is_symmetric(&g, 1e-9));
        // diagonal entries are column norms² ≥ 0
        for i in 0..g.rows() {
            prop_assert!(g.get(i, i).unwrap() >= -1e-12);
        }
    }

    #[test]
    fn lu_solve_has_small_residual(a in square(8), xs in proptest::collection::vec(-5.0f64..5.0, 8)) {
        // Make it comfortably nonsingular: A + (n+scale)·I
        let n = a.rows();
        let scale = a.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let a = a.add(&Matrix::identity(n).scalar_mul(10.0 * (scale + 1.0))).unwrap();
        let x_true = Vector::from_slice(&xs[..n]);
        let b = a.matrix_vector_multiply(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        prop_assert!(x.approx_eq(&x_true, 1e-6));
    }

    #[test]
    fn inverse_roundtrip(a in square(7)) {
        let n = a.rows();
        let scale = a.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let a = a.add(&Matrix::identity(n).scalar_mul(10.0 * (scale + 1.0))).unwrap();
        let inv = a.inverse().unwrap();
        prop_assert!(a.multiply(&inv).unwrap().approx_eq(&Matrix::identity(n), 1e-7));
    }

    #[test]
    fn outer_product_matches_matrix_form(v in vector(9), w in vector(7)) {
        let op = v.outer_product(&w);
        let mat = v.to_col_matrix().multiply(&w.to_row_matrix()).unwrap();
        prop_assert!(op.approx_eq(&mat, 1e-12));
    }

    #[test]
    fn inner_product_is_symmetric_and_cauchy_schwarz(v in vector(16), w in vector(16)) {
        let vw = v.inner_product(&w).unwrap();
        let wv = w.inner_product(&v).unwrap();
        prop_assert!((vw - wv).abs() < 1e-12);
        prop_assert!(vw.abs() <= v.norm2() * w.norm2() + 1e-9);
    }

    #[test]
    fn elementwise_add_commutes_sub_inverts(v in vector(12), w in vector(12)) {
        prop_assert!(v.add(&w).unwrap().approx_eq(&w.add(&v).unwrap(), 0.0));
        prop_assert!(v.add(&w).unwrap().sub(&w).unwrap().approx_eq(&v, 1e-9));
    }

    #[test]
    fn vectorize_places_every_label(pairs in proptest::collection::vec((0i64..50, -10.0f64..10.0), 1..40)) {
        let mut b = VectorizeBuilder::new();
        for &(l, v) in &pairs {
            b.push(LabeledScalar::new(v, l)).unwrap();
        }
        let out = b.finish();
        let max_label = pairs.iter().map(|(l, _)| *l).max().unwrap();
        prop_assert_eq!(out.len() as i64, max_label + 1);
        // last write per label wins
        for &(l, _) in &pairs {
            let expected = pairs.iter().rev().find(|(l2, _)| *l2 == l).unwrap().1;
            prop_assert_eq!(out.get(l as usize).unwrap(), expected);
        }
    }

    #[test]
    fn rowmatrix_roundtrips_rows(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 4), 1..12)
    ) {
        let mut b = RowMatrixBuilder::new();
        for (i, r) in rows.iter().enumerate() {
            b.push(Vector::from_slice(r).with_label(i as i64)).unwrap();
        }
        let m = b.finish_rows();
        prop_assert_eq!(m.shape(), (rows.len(), 4));
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(m.row(i), &r[..]);
        }
    }

    #[test]
    fn scalar_broadcast_agrees_with_map(m in matrix(8), s in -5.0f64..5.0) {
        let broadcast = m.scalar_mul(s);
        let mapped = m.map(|x| x * s);
        prop_assert!(broadcast.approx_eq(&mapped, 0.0));
    }

    #[test]
    fn row_col_sums_consistent_with_total(m in matrix(9)) {
        let total = m.sum_elements();
        prop_assert!((m.row_sums().sum_elements() - total).abs() < 1e-8);
        prop_assert!((m.col_sums().sum_elements() - total).abs() < 1e-8);
    }
}
