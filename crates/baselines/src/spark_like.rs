//! A miniature Spark `mllib.linalg`: RDD-style partitioned collections and
//! a distributed `BlockMatrix`.
//!
//! The paper's Spark implementations are reproduced at the *strategy*
//! level, including the cost characteristics that made Spark uncompetitive
//! at 1000 dimensions:
//!
//! * the Gram/regression jobs are `map` + `reduce` over per-row results,
//!   where — exactly like the paper's Scala
//!   `.reduce((a, b) => (a, b).zipped.map(_+_))` — **every combine
//!   allocates a fresh result buffer** instead of accumulating in place;
//! * the distance job uses a `BlockMatrix`-style blocked multiply in which
//!   every block crossing a "shuffle" boundary is **deep-copied first**
//!   (standing in for serialization), then reduced row-wise through an
//!   RDD of `(index, row)` pairs as the paper's code does.

use lardb_la::{CholeskyDecomposition, Matrix, Vector};

use crate::{split_ranges, WorkloadData};

/// A resilient-distributed-dataset stand-in: a partitioned `Vec`.
#[derive(Debug, Clone)]
pub struct Rdd<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send> Rdd<T> {
    /// Distributes `items` round-robin over `parts` partitions.
    pub fn parallelize(items: Vec<T>, parts: usize) -> Self {
        let parts = parts.max(1);
        let mut partitions: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            partitions[i % parts].push(item);
        }
        Rdd { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total element count.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Parallel per-element map.
    pub fn map<U: Send>(self, f: impl Fn(T) -> U + Sync) -> Rdd<U> {
        let partitions = par_over(self.partitions, |part| {
            part.into_iter().map(&f).collect::<Vec<U>>()
        });
        Rdd { partitions }
    }

    /// Parallel reduce: each partition folds locally (allocating combine,
    /// like the paper's Scala), then the driver combines partials.
    pub fn reduce(self, f: impl Fn(T, T) -> T + Sync) -> Option<T> {
        let partials: Vec<Option<T>> = par_over(self.partitions, |part| {
            part.into_iter().reduce(&f)
        });
        partials.into_iter().flatten().reduce(&f)
    }

    /// Gathers all elements to the driver.
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Pipelined map + reduce, the way a Spark stage actually executes:
    /// each element is mapped and folded immediately, so only one mapped
    /// value per partition is alive at a time. (A bare `.map().reduce()`
    /// here would materialize the whole mapped RDD — 20 000 × 8 MB outer
    /// products for the 1000-dim Gram — which no real engine does.) The
    /// combine function still allocates per call, faithfully to the
    /// paper's `(a, b).zipped.map(_+_)`.
    pub fn map_reduce<U: Send>(
        self,
        map_f: impl Fn(T) -> U + Sync,
        reduce_f: impl Fn(U, U) -> U + Sync,
    ) -> Option<U> {
        let partials: Vec<Option<U>> = par_over(self.partitions, |part| {
            let mut acc: Option<U> = None;
            for item in part {
                let mapped = map_f(item);
                acc = Some(match acc {
                    None => mapped,
                    Some(a) => reduce_f(a, mapped),
                });
            }
            acc
        });
        partials.into_iter().flatten().reduce(&reduce_f)
    }
}

fn par_over<T: Send, R: Send>(
    parts: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    if parts.len() <= 1 {
        return parts.into_iter().map(f).collect();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| {
                let f = &f;
                scope.spawn(move |_| f(p))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("executor died")).collect()
    })
    .expect("scope")
}

/// The miniature Spark engine.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    block: usize,
}

impl Engine {
    /// An engine with `workers` executors and 1000-row blocks for the
    /// BlockMatrix path (the paper's block size).
    pub fn new(workers: usize) -> Self {
        Engine::with_block(workers, 1000)
    }

    /// Explicit BlockMatrix block height.
    pub fn with_block(workers: usize, block: usize) -> Self {
        Engine { workers: workers.max(1), block: block.max(1) }
    }

    /// Vector-based Gram: `parsedData.map(x => xᵀ·x).reduce(zipped add)` —
    /// each combine allocates a fresh d² buffer, as the paper's code does.
    pub fn gram(&self, data: &WorkloadData) -> Matrix {
        let d = data.x.cols();
        let rows: Vec<Vec<f64>> =
            (0..data.x.rows()).map(|i| data.x.row(i).to_vec()).collect();
        let flat = Rdd::parallelize(rows, self.workers)
            .map_reduce(
                |row| {
                    // outer product, flattened row-major (a fresh boxed
                    // array per input row, like
                    // `x.transpose.multiply(x).toArray`)
                    let mut out = vec![0.0f64; d * d];
                    for (i, &a) in row.iter().enumerate() {
                        for (j, &b) in row.iter().enumerate() {
                            out[i * d + j] = a * b;
                        }
                    }
                    out
                },
                // `(a, b).zipped.map(_+_)`: allocates the combined array.
                |a, b| a.iter().zip(b.iter()).map(|(x, y)| x + y).collect(),
            )
            .expect("nonempty data");
        Matrix::from_vec(d, d, flat).expect("consistent shape")
    }

    /// Vector-based least squares: map to (xxᵀ, x·y) pairs, allocating
    /// reduce, then a driver-side solve.
    pub fn linear_regression(&self, data: &WorkloadData) -> Vector {
        let d = data.x.cols();
        let rows: Vec<(Vec<f64>, f64)> = (0..data.x.rows())
            .map(|i| (data.x.row(i).to_vec(), data.y[i]))
            .collect();
        let (xtx, xty) = Rdd::parallelize(rows, self.workers)
            .map_reduce(
                |(row, y)| {
                    let mut m = vec![0.0f64; d * d];
                    let mut v = vec![0.0f64; d];
                    for (i, &a) in row.iter().enumerate() {
                        v[i] = a * y;
                        for (j, &b) in row.iter().enumerate() {
                            m[i * d + j] = a * b;
                        }
                    }
                    (m, v)
                },
                |(m1, v1), (m2, v2)| {
                    (
                        m1.iter().zip(&m2).map(|(a, b)| a + b).collect(),
                        v1.iter().zip(&v2).map(|(a, b)| a + b).collect(),
                    )
                },
            )
            .expect("nonempty data");
        let xtx = Matrix::from_vec(d, d, xtx).expect("consistent");
        let xty = Vector::from_vec(xty);
        CholeskyDecomposition::new(&xtx)
            .map(|c| c.solve(&xty).expect("aligned"))
            .unwrap_or_else(|_| xtx.solve(&xty).expect("nonsingular"))
    }

    /// BlockMatrix-based distance: `X · A · Xᵀ` over blocks (each block
    /// deep-copied across the simulated shuffle), then the paper's
    /// RDD-of-rows min/argmax epilogue.
    pub fn distance_argmax(&self, data: &WorkloadData) -> Vec<usize> {
        let n = data.x.rows();
        // Block X row-wise.
        let blocks: Vec<(usize, Matrix)> = split_ranges(n, n.div_ceil(self.block))
            .into_iter()
            .map(|r| {
                (r.start, data.x.submatrix(r.start, 0, r.len(), data.x.cols()).unwrap())
            })
            .collect();
        // W = X·A blockwise (shuffle: clone the block first).
        let w_blocks: Vec<(usize, Matrix)> =
            par_over(blocks.clone(), |(off, b)| {
                let shipped = b.clone(); // serialization stand-in
                (off, shipped.multiply(&data.a).expect("shapes"))
            });
        // dist = W · Xᵀ blockwise; emit (global row index, row) pairs like
        // `toIndexedRowMatrix.rows.map(...)`.
        let all_pairs: Vec<Vec<(usize, Vec<f64>)>> =
            par_over(w_blocks, |(row_off, wb)| {
                let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; wb.rows()];
                for (col_off, xb) in &blocks {
                    let shipped = xb.clone(); // shuffle copy again
                    let tile = wb.multiply(&shipped.transpose()).expect("dims");
                    for i in 0..tile.rows() {
                        rows[i][*col_off..*col_off + tile.cols()]
                            .copy_from_slice(tile.row(i));
                    }
                }
                rows.into_iter()
                    .enumerate()
                    .map(|(i, r)| (row_off + i, r))
                    .collect()
            });
        // The paper's epilogue: per row, mask the diagonal, take min; then
        // a driver-side max with ties.
        let indexed: Vec<(usize, Vec<f64>)> = all_pairs.into_iter().flatten().collect();
        let mins: Vec<(usize, f64)> = Rdd::parallelize(indexed, self.workers)
            .map(|(i, row)| {
                let m = row
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, &v)| v)
                    .fold(f64::INFINITY, f64::min);
                (i, m)
            })
            .collect();
        let best = mins.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        let mut winners: Vec<usize> =
            mins.into_iter().filter(|(_, v)| *v == best).map(|(i, _)| i).collect();
        winners.sort_unstable();
        winners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_x(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn rdd_map_reduce_basics() {
        let r = Rdd::parallelize((1..=10i64).collect(), 3);
        assert_eq!(r.num_partitions(), 3);
        assert_eq!(r.count(), 10);
        let sum = r.map(|x| x * 2).reduce(|a, b| a + b).unwrap();
        assert_eq!(sum, 110);
        let empty: Rdd<i64> = Rdd::parallelize(vec![], 4);
        assert_eq!(empty.reduce(|a, b| a + b), None);
    }

    #[test]
    fn pipelined_map_reduce_matches_materialized() {
        let items: Vec<i64> = (1..=50).collect();
        let a = Rdd::parallelize(items.clone(), 4).map(|x| x * x).reduce(|a, b| a + b);
        let b = Rdd::parallelize(items, 4).map_reduce(|x| x * x, |a, b| a + b);
        assert_eq!(a, b);
        let empty: Rdd<i64> = Rdd::parallelize(vec![], 3);
        assert_eq!(empty.map_reduce(|x| x, |a, b| a + b), None);
    }

    #[test]
    fn gram_matches_kernel() {
        let x = random_x(37, 6, 10);
        let got = Engine::new(4).gram(&WorkloadData::from_x(x.clone()));
        assert!(got.approx_eq(&x.gram(), 1e-9));
    }

    #[test]
    fn regression_recovers_beta() {
        let x = random_x(45, 4, 11);
        let beta = Vector::from_fn(4, |i| 0.5 * (i as f64) - 1.0);
        let y: Vec<f64> = (0..45)
            .map(|i| x.row_vector(i).unwrap().inner_product(&beta).unwrap())
            .collect();
        let data = WorkloadData { x, y, a: Matrix::identity(4) };
        let got = Engine::new(3).linear_regression(&data);
        assert!(got.approx_eq(&beta, 1e-8));
    }

    #[test]
    fn distance_agrees_with_other_baselines() {
        let n = 25;
        let d = 3;
        let x = random_x(n, d, 12);
        let b = random_x(d, d, 13);
        let a = b.multiply(&b.transpose()).unwrap();
        let data = WorkloadData { x, y: vec![], a };
        let spark = Engine::with_block(4, 6).distance_argmax(&data);
        let sysml = crate::systemml_like::Engine::new(4).distance_argmax(&data);
        assert_eq!(spark, sysml);
    }
}
