//! A miniature SystemML: block-partitioned matrices with fused block
//! map/reduce execution.
//!
//! SystemML V0.9 stores matrices as square blocks and compiles DML scripts
//! like `result = t(X) %*% X` into block-parallel MapReduce (or in-memory)
//! jobs. This module executes the paper's three DML programs the same way:
//! the data matrix is split into row panels, each worker computes a
//! partial result over its panels, and partials are reduced on the driver.
//! There is no relational machinery at all — which is exactly why this
//! baseline is fast at high dimensionality and why beating or matching it
//! with a *relational* engine is the paper's headline.

use lardb_la::{CholeskyDecomposition, Matrix, Vector};

use crate::{split_ranges, WorkloadData};

/// Strip height used when materializing slices of the n×n distance matrix
/// (`all_dist` in the paper's DML) so memory stays bounded.
const DIST_STRIP: usize = 256;

/// The miniature SystemML engine.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// An engine with `workers` parallel workers.
    pub fn new(workers: usize) -> Self {
        Engine { workers: workers.max(1) }
    }

    /// `result = t(X) %*% X` — the paper's one-line Gram DML.
    pub fn gram(&self, data: &WorkloadData) -> Matrix {
        let x = &data.x;
        let panels = split_ranges(x.rows(), self.workers);
        let partials = self.par_map(panels, |range| {
            x.submatrix(range.start, 0, range.len(), x.cols())
                .expect("panel in range")
                .gram()
        });
        reduce_add(partials)
    }

    /// `beta = solve(t(X) %*% X, t(X) %*% y)` — least squares via the
    /// normal equations, Cholesky-solved as SystemML's `solve` does for
    /// SPD systems.
    pub fn linear_regression(&self, data: &WorkloadData) -> Vector {
        let x = &data.x;
        let y = &data.y;
        assert_eq!(x.rows(), y.len(), "X and y must align");
        let panels = split_ranges(x.rows(), self.workers);
        let partials = self.par_map(panels, |range| {
            let panel = x
                .submatrix(range.start, 0, range.len(), x.cols())
                .expect("panel in range");
            let xtx = panel.gram();
            let yv = Vector::from_slice(&y[range.start..range.end]);
            let xty = yv.vector_matrix_multiply(&panel).expect("aligned");
            (xtx, xty)
        });
        let (xtx, xty) = partials
            .into_iter()
            .reduce(|(mut a, mut b), (a2, b2)| {
                a.add_in_place(&a2).expect("same shape");
                b.add_in_place(&b2).expect("same shape");
                (a, b)
            })
            .expect("at least one panel");
        CholeskyDecomposition::new(&xtx)
            .map(|c| c.solve(&xty).expect("aligned"))
            .unwrap_or_else(|_| xtx.solve(&xty).expect("nonsingular"))
    }

    /// The paper's distance DML:
    ///
    /// ```text
    /// all_dist = X %*% m %*% X_t
    /// all_dist = all_dist + diag(diag_inf)
    /// min_dist = rowMins(all_dist)
    /// result = rowIndexMax(t(min_dist))
    /// ```
    ///
    /// Returns every index achieving the maximum (ties included).
    pub fn distance_argmax(&self, data: &WorkloadData) -> Vec<usize> {
        let x = &data.x;
        let n = x.rows();
        // W = X %*% m (n × d), panel-parallel.
        let w = {
            let panels = split_ranges(n, self.workers);
            let parts = self.par_map(panels, |range| {
                x.submatrix(range.start, 0, range.len(), x.cols())
                    .expect("panel")
                    .multiply(&data.a)
                    .expect("shapes checked by caller")
            });
            let refs: Vec<&Matrix> = parts.iter().collect();
            Matrix::vstack(&refs).expect("uniform width")
        };
        let xt = x.transpose();
        // all_dist strips: rowMins per strip with +inf on the diagonal.
        let strip_starts: Vec<usize> = (0..n).step_by(DIST_STRIP).collect();
        let mins: Vec<Vec<f64>> = self.par_map(strip_starts, |s0| {
            let height = DIST_STRIP.min(n - s0);
            let strip = w
                .submatrix(s0, 0, height, w.cols())
                .expect("strip")
                .multiply(&xt)
                .expect("inner dims");
            (0..height)
                .map(|i| {
                    let row = strip.row(i);
                    let self_idx = s0 + i;
                    row.iter()
                        .enumerate()
                        .filter(|(j, _)| *j != self_idx)
                        .map(|(_, &v)| v)
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        });
        let min_dist: Vec<f64> = mins.into_iter().flatten().collect();
        let best = min_dist.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (0..n).filter(|&i| min_dist[i] == best).collect()
    }

    /// Parallel map over work items using scoped worker threads.
    fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = items
                .into_iter()
                .map(|item| {
                    let f = &f;
                    scope.spawn(move |_| f(item))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scope")
    }
}

fn reduce_add(parts: Vec<Matrix>) -> Matrix {
    parts
        .into_iter()
        .reduce(|mut a, b| {
            a.add_in_place(&b).expect("same shape");
            a
        })
        .expect("at least one partial")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_x(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn gram_matches_kernel() {
        let x = random_x(57, 6, 1);
        let e = Engine::new(4);
        let got = e.gram(&WorkloadData::from_x(x.clone()));
        assert!(got.approx_eq(&x.gram(), 1e-9));
    }

    #[test]
    fn gram_single_worker_same_as_many() {
        let x = random_x(23, 4, 2);
        let a = Engine::new(1).gram(&WorkloadData::from_x(x.clone()));
        let b = Engine::new(7).gram(&WorkloadData::from_x(x));
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn regression_recovers_beta() {
        let x = random_x(60, 5, 3);
        let beta = Vector::from_fn(5, |i| (i as f64) - 2.0);
        let y: Vec<f64> = (0..60)
            .map(|i| x.row_vector(i).unwrap().inner_product(&beta).unwrap())
            .collect();
        let data = WorkloadData { x, y, a: Matrix::identity(5) };
        let got = Engine::new(3).linear_regression(&data);
        assert!(got.approx_eq(&beta, 1e-8));
    }

    #[test]
    fn distance_matches_bruteforce() {
        let n = 40;
        let d = 3;
        let x = random_x(n, d, 4);
        let b = random_x(d, d, 5);
        let a = b.multiply(&b.transpose()).unwrap(); // symmetric
        let data = WorkloadData { x: x.clone(), y: vec![], a: a.clone() };
        let got = Engine::new(4).distance_argmax(&data);

        // brute force
        let mut mins = vec![f64::INFINITY; n];
        for i in 0..n {
            let axi = a.matrix_vector_multiply(&x.row_vector(i).unwrap()).unwrap();
            for j in 0..n {
                if i != j {
                    let v = x.row_vector(j).unwrap().inner_product(&axi).unwrap();
                    // d(i, j) as X·A·Xᵀ entry (i, j): row i of X·A times col j
                    // of Xᵀ — same as x_j · (A·x_i) because A is symmetric.
                    mins[i] = mins[i].min(v);
                }
            }
        }
        let best = mins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let expected: Vec<usize> = (0..n).filter(|&i| mins[i] == best).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn distance_strips_handle_small_n() {
        // n far below the strip height.
        let x = random_x(5, 2, 9);
        let data = WorkloadData::from_x(x);
        let got = Engine::new(2).distance_argmax(&data);
        assert_eq!(got.len(), 1);
    }
}
