//! A miniature SciDB: chunked dense arrays with AQL-shaped operators.
//!
//! SciDB partitions arrays into chunks (the paper used chunk size 1000 for
//! every array) and executes `gemm`, `filter` and grouped aggregates over
//! chunks. The three workloads below follow the paper's AQL programs
//! operator by operator: the Gram matrix is
//! `gemm(transpose(x), x, build(...))`, and the distance computation is the
//! five-statement AQL pipeline from §5 (`mxt`, `all_distance` with the
//! `t1<>t2` filter, grouped `min`, global `max`, and the final join-select).

use lardb_la::{CholeskyDecomposition, Matrix, Vector};

use crate::WorkloadData;

/// A dense 2-D array stored as row-chunks of fixed height.
#[derive(Debug, Clone)]
pub struct ChunkedArray {
    chunk: usize,
    cols: usize,
    chunks: Vec<Matrix>,
}

impl ChunkedArray {
    /// Chunks a dense matrix (row-wise) with chunk height `chunk`.
    pub fn from_dense(m: &Matrix, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        let mut chunks = Vec::new();
        let mut r = 0;
        while r < m.rows() {
            let h = chunk.min(m.rows() - r);
            chunks.push(m.submatrix(r, 0, h, m.cols()).expect("in range"));
            r += h;
        }
        ChunkedArray { chunk, cols: m.cols(), chunks }
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.chunks.iter().map(Matrix::rows).sum()
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Chunk height.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// The chunks.
    pub fn chunks(&self) -> &[Matrix] {
        &self.chunks
    }

    /// Reassembles the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let refs: Vec<&Matrix> = self.chunks.iter().collect();
        Matrix::vstack(&refs).expect("uniform width")
    }
}

/// The miniature SciDB engine.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    chunk: usize,
}

impl Engine {
    /// An engine with `workers` workers and the paper's default chunk size
    /// of 1000.
    pub fn new(workers: usize) -> Self {
        Engine::with_chunk(workers, 1000)
    }

    /// An engine with an explicit chunk size.
    pub fn with_chunk(workers: usize, chunk: usize) -> Self {
        Engine { workers: workers.max(1), chunk: chunk.max(1) }
    }

    /// `SELECT * FROM gemm(transpose(x), x, build(<val>[...], 0))`.
    pub fn gram(&self, data: &WorkloadData) -> Matrix {
        let x = ChunkedArray::from_dense(&data.x, self.chunk);
        // gemm over chunks: Σ_c chunkᵀ · chunk, chunk-parallel.
        let partials = self.par_map(x.chunks.clone(), |c| c.gram());
        partials
            .into_iter()
            .reduce(|mut a, b| {
                a.add_in_place(&b).expect("same shape");
                a
            })
            .expect("nonempty array")
    }

    /// Least squares through two gemm calls and a solve, as the paper's
    /// "linear regression is similar" AQL would do.
    pub fn linear_regression(&self, data: &WorkloadData) -> Vector {
        let x = ChunkedArray::from_dense(&data.x, self.chunk);
        let y = &data.y;
        let mut offsets = Vec::with_capacity(x.chunks.len());
        let mut off = 0;
        for c in &x.chunks {
            offsets.push(off);
            off += c.rows();
        }
        let work: Vec<(Matrix, usize)> =
            x.chunks.iter().cloned().zip(offsets).collect();
        let partials = self.par_map(work, |(c, off)| {
            let xtx = c.gram();
            let yv = Vector::from_slice(&y[off..off + c.rows()]);
            let xty = yv.vector_matrix_multiply(&c).expect("aligned");
            (xtx, xty)
        });
        let (xtx, xty) = partials
            .into_iter()
            .reduce(|(mut a, mut b), (a2, b2)| {
                a.add_in_place(&a2).expect("same shape");
                b.add_in_place(&b2).expect("same shape");
                (a, b)
            })
            .expect("nonempty");
        CholeskyDecomposition::new(&xtx)
            .map(|ch| ch.solve(&xty).expect("aligned"))
            .unwrap_or_else(|_| xtx.solve(&xty).expect("nonsingular"))
    }

    /// The paper's five-statement AQL distance pipeline:
    ///
    /// ```text
    /// mxt          := gemm(m, transpose(x))
    /// all_distance := filter(gemm(x, mxt), t1 <> t2)
    /// distance     := min(all_distance) GROUP BY t1
    /// max_dist     := max(distance.min)
    /// result       := SELECT t1 WHERE distance.min = max_dist
    /// ```
    pub fn distance_argmax(&self, data: &WorkloadData) -> Vec<usize> {
        let x = ChunkedArray::from_dense(&data.x, self.chunk);
        let n = x.rows();
        // mxt = A · Xᵀ, materialized column-chunk-wise: (d × n).
        let mxt = {
            let parts = self.par_map(x.chunks.clone(), |c| {
                data.a.multiply(&c.transpose()).expect("shapes")
            });
            // horizontal concat == vstack of transposes, but we only ever
            // read it as per-chunk column groups, so keep the pieces.
            parts
        };
        // all_distance chunks: for each row-chunk i of X and piece j of mxt,
        // gemm gives a (chunk × chunk) tile; grouped min per row with the
        // t1<>t2 filter skipping the diagonal tile's diagonal.
        let mut offsets = Vec::new();
        let mut off = 0;
        for c in &x.chunks {
            offsets.push(off);
            off += c.rows();
        }
        let work: Vec<(usize, Matrix)> =
            offsets.iter().copied().zip(x.chunks.iter().cloned()).collect();
        let mins: Vec<Vec<f64>> = self.par_map(work, |(row_off, xc)| {
            let mut row_min = vec![f64::INFINITY; xc.rows()];
            for (j, piece) in mxt.iter().enumerate() {
                let col_off = offsets[j];
                let tile = xc.multiply(piece).expect("inner dims");
                for (i, best) in row_min.iter_mut().enumerate().take(tile.rows()) {
                    let global_i = row_off + i;
                    for (jj, &v) in tile.row(i).iter().enumerate() {
                        if col_off + jj == global_i {
                            continue; // the t1 <> t2 filter
                        }
                        if v < *best {
                            *best = v;
                        }
                    }
                }
            }
            row_min
        });
        let min_dist: Vec<f64> = mins.into_iter().flatten().collect();
        let best = min_dist.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (0..n).filter(|&i| min_dist[i] == best).collect()
    }

    fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if items.len() <= 1 || self.workers == 1 {
            return items.into_iter().map(f).collect();
        }
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = items
                .into_iter()
                .map(|item| {
                    let f = &f;
                    scope.spawn(move |_| f(item))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scope")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_x(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn chunking_roundtrip() {
        let m = random_x(23, 4, 0);
        let c = ChunkedArray::from_dense(&m, 5);
        assert_eq!(c.chunks().len(), 5);
        assert_eq!(c.rows(), 23);
        assert!(c.to_dense().approx_eq(&m, 0.0));
    }

    #[test]
    fn gram_matches_kernel_across_chunk_sizes() {
        let x = random_x(41, 5, 1);
        for chunk in [1, 7, 41, 1000] {
            let e = Engine::with_chunk(4, chunk);
            let got = e.gram(&WorkloadData::from_x(x.clone()));
            assert!(got.approx_eq(&x.gram(), 1e-9), "chunk={chunk}");
        }
    }

    #[test]
    fn regression_recovers_beta() {
        let x = random_x(50, 4, 2);
        let beta = Vector::from_fn(4, |i| 1.0 - i as f64);
        let y: Vec<f64> = (0..50)
            .map(|i| x.row_vector(i).unwrap().inner_product(&beta).unwrap())
            .collect();
        let data = WorkloadData { x, y, a: Matrix::identity(4) };
        let got = Engine::with_chunk(3, 9).linear_regression(&data);
        assert!(got.approx_eq(&beta, 1e-8));
    }

    #[test]
    fn distance_matches_systemml_miniature() {
        let n = 30;
        let d = 3;
        let x = random_x(n, d, 3);
        let b = random_x(d, d, 4);
        let a = b.multiply(&b.transpose()).unwrap();
        let data = WorkloadData { x, y: vec![], a };
        let scidb = Engine::with_chunk(4, 7).distance_argmax(&data);
        let sysml = crate::systemml_like::Engine::new(4).distance_argmax(&data);
        assert_eq!(scidb, sysml);
    }
}
