//! # lardb-baselines — miniature comparator engines for the §5 experiments
//!
//! The paper benchmarks its extended SimSQL against SystemML V0.9, SciDB
//! V14.8 and Spark 1.6 `mllib.linalg`. None of those systems is available
//! here, so — per the reproduction's substitution rule — this crate
//! implements *faithful miniatures*: engines that execute the same
//! physical strategies those systems used for the paper's three workloads,
//! on the same thread-per-worker substrate as lardb itself.
//!
//! * [`systemml_like`] — block-partitioned matrices (square blocks, as
//!   SystemML's physical layer stores them) with fused block map/reduce
//!   operators; workloads written the way the paper's DML scripts compile.
//! * [`scidb_like`] — chunked dense arrays with `gemm`, `filter`,
//!   grouped aggregation, mirroring the paper's AQL programs (chunk size
//!   1000, as in §5).
//! * [`spark_like`] — an RDD-style lazy partitioned collection with
//!   `map`/`reduce`/`tree_reduce` and a distributed `BlockMatrix`.
//!   Deliberately models the allocation behaviour of the paper's Scala
//!   code (`(a, b).zipped.map(_+_)` allocates a fresh array per combine;
//!   per-row results are boxed) — that allocation churn is a large part of
//!   why Spark was uncompetitive at 1000 dimensions, and the miniature
//!   reproduces it by construction.
//!
//! Each module exposes the three §5 workloads (Gram matrix, least-squares
//! regression, distance computation) with identical signatures so the
//! benchmark harness can drive all platforms uniformly.

pub mod scidb_like;
pub mod spark_like;
pub mod systemml_like;

use lardb_la::Matrix;

/// Dense input data shared by all comparator engines: one row per data
/// point (n × dims), plus optional targets / metric.
#[derive(Debug, Clone)]
pub struct WorkloadData {
    /// The data matrix X (n × dims).
    pub x: Matrix,
    /// Regression targets y (length n), when the workload needs them.
    pub y: Vec<f64>,
    /// The distance metric A (dims × dims), when the workload needs it.
    pub a: Matrix,
}

impl WorkloadData {
    /// Builds workload data from a data matrix alone.
    pub fn from_x(x: Matrix) -> Self {
        let dims = x.cols();
        WorkloadData { x, y: Vec::new(), a: Matrix::identity(dims) }
    }
}

/// Splits `0..n` into `parts` contiguous ranges (last one ragged).
pub(crate) fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let per = n.div_ceil(parts);
    (0..parts)
        .map(|p| (p * per).min(n)..((p + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for (n, p) in [(10, 3), (7, 7), (5, 8), (100, 4), (0, 3)] {
            let rs = split_ranges(n, p);
            let total: usize = rs.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            let mut next = 0;
            for r in &rs {
                assert_eq!(r.start, next);
                next = r.end;
            }
        }
    }
}
