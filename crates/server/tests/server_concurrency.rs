//! End-to-end tests for the query server: concurrency, isolation,
//! quotas, kill, disconnect cleanup, and query tracing — all over
//! real TCP.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lardb::{Database, DatabaseConfig};
use lardb_obs::TraceId;
use lardb_server::{Client, QueryOutput, Server, ServerConfig, ServerError};

/// The flight recorder is process-global; tests that resize its ring or
/// assert on its contents serialize through this lock so they don't
/// observe each other's churn.
fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_db() -> Database {
    Database::with_config(DatabaseConfig { workers: 2, ..DatabaseConfig::default() })
}

fn addr_of(server: &Server) -> String {
    server.local_addr().to_string()
}

fn rows_of(out: QueryOutput) -> Vec<lardb::Row> {
    match out {
        QueryOutput::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Tentpole acceptance: 64 concurrent clients over TCP see results
/// bit-identical to a serial run of the same queries.
#[test]
fn concurrent_tcp_clients_match_serial_execution() {
    const CLIENTS: usize = 64;
    const QUERIES_PER_CLIENT: usize = 3;

    let db = small_db();
    db.execute("CREATE TABLE nums (id INTEGER, v DOUBLE)").unwrap();
    let values: Vec<String> =
        (0..200).map(|i| format!("({i}, {})", (i % 17) as f64 * 0.5)).collect();
    db.execute(&format!("INSERT INTO nums VALUES {}", values.join(", "))).unwrap();

    // Serial reference answers, computed embedded (same engine, no wire).
    let queries: Vec<String> = (0..CLIENTS)
        .map(|c| {
            format!(
                "SELECT id, v FROM nums WHERE id >= {} AND id < {} ORDER BY id",
                (c % 8) * 20,
                (c % 8) * 20 + 20
            )
        })
        .collect();
    let expected: Vec<Vec<lardb::Row>> = queries
        .iter()
        .map(|q| db.execute(q).unwrap().into_rows().unwrap().rows)
        .collect();

    let server = Server::start(
        db,
        ServerConfig {
            max_sessions: CLIENTS + 4,
            max_concurrent: 8,
            queue_depth: CLIENTS,
            queue_wait_ms: 30_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let query = queries[c].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, &format!("t{}", c % 4), "").unwrap();
                let mut all = Vec::new();
                for _ in 0..QUERIES_PER_CLIENT {
                    all.push(rows_of(client.query(&query).unwrap()));
                }
                client.close().unwrap();
                all
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        let results = h.join().expect("client thread panicked");
        for rows in results {
            assert_eq!(
                rows, expected[c],
                "client {c} saw different rows over TCP than serial execution"
            );
        }
    }
    assert_eq!(server.connections(), 0, "all sessions closed");
    server.shutdown();
}

/// DDL racing reads: concurrent CREATE/INSERT/SELECT across sessions
/// never crashes the server and every reply is well-formed.
#[test]
fn ddl_racing_reads_is_safe() {
    let db = small_db();
    db.execute("CREATE TABLE base (id INTEGER)").unwrap();
    db.execute("INSERT INTO base VALUES (1), (2), (3)").unwrap();
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr, "writer", "").unwrap();
            for i in 0..10 {
                client.query(&format!("CREATE TABLE side_{i} (x INTEGER)")).unwrap();
                client.query(&format!("INSERT INTO side_{i} VALUES ({i})")).unwrap();
                client.query(&format!("DROP TABLE side_{i}")).unwrap();
            }
            client.close().unwrap();
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, "reader", "").unwrap();
                for _ in 0..15 {
                    // The base table is stable; side tables come and go.
                    // Reads of base must always succeed; reads of a side
                    // table may fail (dropped) but must be a clean error.
                    let rows =
                        rows_of(client.query("SELECT id FROM base ORDER BY id").unwrap());
                    assert_eq!(rows.len(), 3);
                    match client.query("SELECT x FROM side_3") {
                        Ok(_) | Err(ServerError::Query(_)) => {}
                        Err(other) => panic!("unexpected error class: {other}"),
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    server.shutdown();
}

/// A tenant whose quota cannot admit a query gets a typed `Saturated`
/// rejection — the server survives and other tenants are unaffected.
#[test]
fn quota_exhaustion_is_typed_saturation_not_a_crash() {
    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        // Dedicated governor so the tenant child budgets mean something.
        mem: Some(64),
        ..DatabaseConfig::default()
    });
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let server = Server::start(
        db,
        ServerConfig {
            // 1 MiB tenant budget with a floor demand larger than it:
            // admission can never reserve the floor for this tenant.
            tenant_mem_mb: Some(1),
            admission_floor_bytes: 8 * 1024 * 1024,
            queue_wait_ms: 200,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    let mut starved = Client::connect(&addr, "starved", "").unwrap();
    match starved.query("SELECT COUNT(*) AS n FROM t") {
        Err(ServerError::Saturated { reason }) => {
            assert!(
                reason.contains("quota") || reason.contains("saturated"),
                "reason should name the cause: {reason}"
            );
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    // The session (and the server) are still usable after the rejection.
    match starved.query("SELECT 1 AS one") {
        Err(ServerError::Saturated { .. }) => {}
        other => panic!("floor still unsatisfiable, expected Saturated, got {other:?}"),
    }
    starved.close().unwrap();

    server.shutdown();
}

/// Queue overflow rejects immediately with `Saturated` instead of
/// queueing unboundedly.
#[test]
fn queue_overflow_rejects_immediately() {
    let db = small_db();
    db.execute("CREATE TABLE big (a INTEGER)").unwrap();
    let vals: Vec<String> = (0..400).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let server = Server::start(
        db,
        ServerConfig {
            max_concurrent: 1,
            queue_depth: 1,
            queue_wait_ms: 5_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    // Saturate the single slot + single queue spot with slow cross joins,
    // then observe a fast rejection.
    let slow_sql =
        "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z WHERE x.a < 30";
    let saturated = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let saturated = Arc::clone(&saturated);
            std::thread::spawn(move || {
                // Stagger arrivals so occupancy is deterministic: slot,
                // queue spot, rejection.
                std::thread::sleep(Duration::from_millis(i as u64 * 150));
                let mut c = Client::connect(&addr, "load", "").unwrap();
                match c.query(slow_sql) {
                    Ok(_) => {}
                    Err(ServerError::Saturated { .. }) => {
                        saturated.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
                let _ = c.close();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // 1 running + 1 queued fit; at least the third must have been turned
    // away (timing may reject the queued one too).
    assert!(
        saturated.load(Ordering::SeqCst) >= 1,
        "expected at least one Saturated rejection"
    );
    server.shutdown();
}

/// KILL from a second session aborts a running query; afterwards the
/// governor ledger is zero and the spill directory is empty.
#[test]
fn kill_mid_query_reclaims_memory_and_spill() {
    let spill_dir = std::env::temp_dir().join(format!(
        "lardb-server-kill-test-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&spill_dir).unwrap();
    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        pool_workers: Some(2),
        mem: Some(8),
        spill_dir: Some(spill_dir.clone()),
        ..DatabaseConfig::default()
    });
    let governor = Arc::clone(db.memory().governor());
    db.execute("CREATE TABLE big (a INTEGER, b DOUBLE)").unwrap();
    let vals: Vec<String> = (0..600).map(|i| format!("({i}, {}.5)", i % 50)).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    // Session A runs a long cross join; session B finds and kills it.
    let victim = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, "victim", "").unwrap();
            let r = c.query(
                "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z \
                 WHERE x.b + y.b + z.b < 0.0",
            );
            let _ = c.close();
            r
        })
    };

    let mut killer = Client::connect(&addr, "killer", "").unwrap();
    // Find the victim's query id via SHOW SESSIONS.
    let mut query_id: Option<u64> = None;
    let deadline = Instant::now() + Duration::from_secs(10);
    while query_id.is_none() && Instant::now() < deadline {
        let rows = rows_of(killer.query("SHOW SESSIONS").unwrap());
        for r in &rows {
            // Columns: session_id, tenant, peer, state, query_id, sql, ...
            let tenant = r.value(1).to_string();
            if tenant.contains("victim") {
                if let Some(qid) = r.value(4).as_integer() {
                    query_id = Some(qid as u64);
                }
            }
        }
        if query_id.is_none() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let query_id = query_id.expect("victim query never showed up in SHOW SESSIONS");
    let killed_at = Instant::now();
    killer.kill(query_id).expect("kill should reach the running query");

    match victim.join().unwrap() {
        Err(ServerError::Killed(_)) => {}
        other => panic!("victim should die with Killed, got {other:?}"),
    }
    let kill_latency = killed_at.elapsed();
    assert!(
        kill_latency < Duration::from_secs(10),
        "kill took {kill_latency:?} to take effect"
    );

    killer.close().unwrap();
    server.shutdown();

    assert_eq!(
        governor.reserved(),
        0,
        "governor ledger must be zero after a killed query"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&spill_dir)
        .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "spill dir not empty after kill: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// A client that vanishes mid-query gets its query cancelled and its
/// session reaped; the governor ledger returns to zero.
#[test]
fn client_disconnect_aborts_running_query() {
    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        pool_workers: Some(2),
        mem: Some(8),
        ..DatabaseConfig::default()
    });
    let governor = Arc::clone(db.memory().governor());
    let sessions = Arc::clone(db.sessions());
    db.execute("CREATE TABLE big (a INTEGER)").unwrap();
    let vals: Vec<String> = (0..600).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    // Start a long query on a raw connection, then hang up without
    // reading the result.
    {
        use lardb_net::Message;
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        lardb_server::wire::send_message(
            &mut stream,
            &Message::Hello { tenant: "ghost".into(), auth: String::new() },
        )
        .unwrap();
        match lardb_server::wire::recv_message(&mut stream).unwrap() {
            lardb_server::wire::Recv::Msg(Message::Ok { .. }) => {}
            other => panic!("handshake failed: {other:?}"),
        }
        lardb_server::wire::send_message(
            &mut stream,
            &Message::Query {
                sql: "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z \
                      WHERE x.a + y.a + z.a < 0"
                    .into(),
            },
        )
        .unwrap();
        // Give the query a moment to start, then vanish.
        let deadline = Instant::now() + Duration::from_secs(10);
        while sessions.snapshot().iter().all(|s| s.state != "running")
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // `stream` drops here: EOF at the server.
    }

    // The session must disappear (query cancelled, thread unwound).
    let deadline = Instant::now() + Duration::from_secs(15);
    while sessions.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        sessions.active_sessions(),
        0,
        "disconnected session must be reaped"
    );
    server.shutdown();
    assert_eq!(
        governor.reserved(),
        0,
        "governor ledger must be zero after a disconnect-aborted query"
    );
}

/// Sessions beyond `max_sessions` are turned away with `Saturated`
/// before handshake.
#[test]
fn session_cap_rejects_excess_connections() {
    let db = small_db();
    let server = Server::start(
        db,
        ServerConfig { max_sessions: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = addr_of(&server);

    let _a = Client::connect(&addr, "one", "").unwrap();
    let _b = Client::connect(&addr, "two", "").unwrap();
    match Client::connect(&addr, "three", "") {
        Err(ServerError::Saturated { reason }) => {
            assert!(reason.contains("max sessions"), "got: {reason}");
        }
        Ok(_) => panic!("third connection should have been rejected"),
        Err(other) => panic!("expected Saturated, got {other}"),
    }
    server.shutdown();
}

/// Auth: wrong token is rejected, right token accepted.
#[test]
fn auth_token_enforced() {
    let db = small_db();
    let server = Server::start(
        db,
        ServerConfig { auth_token: Some("sesame".into()), ..ServerConfig::default() },
    )
    .unwrap();
    let addr = addr_of(&server);

    match Client::connect(&addr, "t", "wrong") {
        Err(ServerError::Auth(_)) => {}
        other => panic!("expected Auth error, got {:?}", other.map(|_| "client")),
    }
    let c = Client::connect(&addr, "t", "sesame").unwrap();
    c.close().unwrap();
    server.shutdown();
}

/// Prepared statements roundtrip: prepare once, execute twice.
#[test]
fn prepare_and_execute() {
    let db = small_db();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    let mut c = Client::connect(&addr, "t", "").unwrap();
    let stmt = c.prepare("SELECT COUNT(*) AS n FROM t").unwrap();
    for _ in 0..2 {
        let rows = rows_of(c.execute(stmt).unwrap());
        assert_eq!(rows[0].value(0).as_integer(), Some(3));
    }
    assert!(matches!(c.execute(999), Err(ServerError::Query(_))));
    assert!(matches!(c.prepare("SELEKT nope"), Err(ServerError::Query(_))));
    c.close().unwrap();
    server.shutdown();
}

/// `server.*` metrics move: admitted counts grow, sessions gauge returns
/// to zero after close.
#[test]
fn server_metrics_are_published() {
    let db = small_db();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    let admitted_before =
        lardb_obs::global().counter("server.queries_admitted").get();
    let mut c = Client::connect(&addr, "t", "").unwrap();
    let rows = rows_of(c.query("SELECT id FROM t").unwrap());
    assert_eq!(rows.len(), 1);
    let admitted_after =
        lardb_obs::global().counter("server.queries_admitted").get();
    assert!(
        admitted_after > admitted_before,
        "queries_admitted should count admitted queries"
    );
    // SHOW METRICS over the wire includes the server family.
    let metric_rows = rows_of(c.query("SHOW METRICS").unwrap());
    let names: Vec<String> =
        metric_rows.iter().map(|r| r.value(0).to_string()).collect();
    assert!(
        names.iter().any(|n| n.contains("server.queries_admitted")),
        "SHOW METRICS should include server.* metrics, got {names:?}"
    );
    c.close().unwrap();
    server.shutdown();
}

/// Tracing acceptance: a spilling distributed query through the server
/// yields a Chrome trace with the admission wait, every lifecycle span,
/// per-worker morsel spans on at least two pool threads, an exchange
/// span carrying the wire-propagated trace id, and spill I/O events —
/// while `SHOW QUERIES` lists the in-flight query for a second client.
#[test]
fn traced_server_query_yields_complete_chrome_trace() {
    use lardb::{DataType, Partitioning, Row, Schema, TransportMode, Value};

    let _serial = trace_lock();
    let rec = lardb_obs::recorder();
    rec.set_enabled(true);
    rec.set_sample_every(1);
    let prev_capacity = rec.capacity();
    rec.set_capacity(1024);

    let pid = std::process::id();
    let spill_dir = std::env::temp_dir().join(format!("lardb-trace-accept-spill-{pid}"));
    let trace_dir = std::env::temp_dir().join(format!("lardb-trace-accept-out-{pid}"));
    std::fs::create_dir_all(&spill_dir).unwrap();

    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        pool_workers: Some(4),
        morsel_rows: 64,
        transport: TransportMode::Serialized,
        // 1 MiB budget: the fat self-join below must spill.
        mem: Some(1),
        spill_dir: Some(spill_dir.clone()),
        trace_dir: Some(trace_dir.clone()),
        ..DatabaseConfig::default()
    });

    // ~3 MiB table: even split across both workers, each partition's
    // grouped-aggregate state alone exceeds the 1 MiB budget.
    db.create_table(
        "fat",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("g", DataType::Integer),
            ("v", DataType::Double),
            ("payload", DataType::Varchar),
        ]),
        Partitioning::Hash(0),
    )
    .unwrap();
    db.insert_rows(
        "fat",
        (0..16000i64).map(|i| {
            Row::new(vec![
                Value::Integer(i),
                Value::Integer(i % 7),
                Value::Double(i as f64 * 0.125),
                Value::varchar(format!("payload-{i:0>128}")),
            ])
        }),
    )
    .unwrap();
    // Small table for a deliberately slow (but bounded) watch query.
    db.create_table(
        "sq",
        Schema::from_pairs(&[("a", DataType::Integer)]),
        Partitioning::Hash(0),
    )
    .unwrap();
    db.insert_rows("sq", (0..250i64).map(|i| Row::new(vec![Value::Integer(i)]))).unwrap();

    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    // Phase 1: while a slow cross join runs, a second client's
    // SHOW QUERIES lists it with its trace id.
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, "acme", "").unwrap();
            let r = c.query(
                "SELECT COUNT(*) AS n FROM sq AS x, sq AS y, sq AS z \
                 WHERE x.a + y.a + z.a < 0",
            );
            let _ = c.close();
            r
        })
    };
    let mut watcher = Client::connect(&addr, "watcher", "").unwrap();
    let mut seen: Option<(String, String)> = None;
    let deadline = Instant::now() + Duration::from_secs(20);
    while seen.is_none() && Instant::now() < deadline {
        let rows = rows_of(watcher.query("SHOW QUERIES").unwrap());
        for r in &rows {
            // Columns: query_id, trace_id, tenant, state, sql, ...
            // The trace is minted before admission, so the row may show
            // "queued" first — keep polling until it is running.
            if r.value(4).to_string().contains("sq AS z")
                && r.value(3).to_string() == "running"
            {
                seen = Some((r.value(1).to_string(), r.value(2).to_string()));
            }
        }
        if seen.is_none() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let (watched_tid, watched_tenant) =
        seen.expect("SHOW QUERIES never listed the in-flight query as running");
    assert_eq!(watched_tid.len(), 16, "trace_id must be a 16-hex-digit id: {watched_tid}");
    assert_eq!(watched_tenant, "acme");
    let slow_rows = rows_of(slow.join().unwrap().expect("slow query should succeed"));
    assert_eq!(slow_rows[0].value(0).as_integer(), Some(0));

    // Phase 2: a spilling exchange aggregation (16000 distinct ~140-byte
    // VARCHAR keys repartitioned across both workers, per-partition state
    // larger than the 1 MiB budget), then tear the trace apart.
    let mut c = Client::connect(&addr, "acme", "").unwrap();
    let rows = rows_of(
        c.query("SELECT payload, COUNT(*) AS c FROM fat GROUP BY payload").unwrap(),
    );
    assert_eq!(rows.len(), 16000);
    let raw = c.last_trace_id().expect("rows reply must carry the query's trace id");
    let done = rec.find(TraceId(raw)).expect("trace must land in the flight recorder");

    assert_eq!(done.tenant, "acme");
    assert_eq!(done.rows, 16000);
    assert!(done.error.is_none(), "query errored: {:?}", done.error);
    for span in ["admission.wait", "parse", "bind", "optimize", "plan", "execute"] {
        assert!(done.has_span(span), "trace is missing the {span} span");
    }
    assert!(done.has_span("morsel"), "no per-worker morsel span recorded");
    assert!(
        done.spill_bytes_written > 0 && done.has_span("spill.write"),
        "1 MiB budget join must spill (wrote {} bytes)",
        done.spill_bytes_written
    );
    assert!(done.has_span("spill.read"), "spilled state must be read back");

    // The exchange span must carry the id that travelled over the wire.
    let hex = format!("{raw:016x}");
    let exchange_ok = done.events.iter().any(|e| {
        e.name == "exchange"
            && e.args.iter().any(|(k, v)| *k == "trace_id" && *v == hex)
    });
    assert!(exchange_ok, "no exchange span carries the propagated trace id {hex}");

    // Morsels ran on at least two distinct pool threads.
    let worker_tids: std::collections::HashSet<u64> =
        done.events.iter().filter(|e| e.name == "morsel").map(|e| e.tid).collect();
    assert!(worker_tids.len() >= 2, "morsels all ran on one thread: {worker_tids:?}");

    // Chrome trace-event JSON, both in memory and on disk via --trace-dir.
    let json = done.to_chrome_json();
    assert!(json.contains("\"traceEvents\""), "not Chrome trace JSON: {json}");
    assert!(json.contains("\"admission.wait\"") && json.contains("\"exchange\""));
    let file = trace_dir.join(format!("trace-{}.json", done.id));
    let on_disk = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("trace file {} missing: {e}", file.display()));
    assert_eq!(on_disk, json);

    c.close().unwrap();
    watcher.close().unwrap();
    server.shutdown();
    rec.set_capacity(prev_capacity);
    let _ = std::fs::remove_dir_all(&spill_dir);
    let _ = std::fs::remove_dir_all(&trace_dir);
}

/// Every query of a 64-client concurrent run lands in the flight
/// recorder with its full admission→execute span tree, correlated to
/// the client through the wire-propagated trace id.
#[test]
fn concurrent_run_traces_every_query_end_to_end() {
    const CLIENTS: usize = 64;

    let _serial = trace_lock();
    let rec = lardb_obs::recorder();
    rec.set_enabled(true);
    rec.set_sample_every(1);
    let prev_capacity = rec.capacity();
    rec.set_capacity(4096);

    let db = small_db();
    db.execute("CREATE TABLE tq (id INTEGER, v DOUBLE)").unwrap();
    let values: Vec<String> =
        (0..100).map(|i| format!("({i}, {})", i as f64 * 0.5)).collect();
    db.execute(&format!("INSERT INTO tq VALUES {}", values.join(", "))).unwrap();

    let server = Server::start(
        db,
        ServerConfig {
            max_sessions: CLIENTS + 4,
            max_concurrent: 8,
            queue_depth: CLIENTS,
            queue_wait_ms: 30_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, &format!("t{}", c % 4), "").unwrap();
                // A distinct SELECT list per client ties trace to query.
                let rows = rows_of(
                    client
                        .query(&format!("SELECT id, {c} AS tag FROM tq WHERE id < 5"))
                        .unwrap(),
                );
                assert_eq!(rows.len(), 5);
                let tid = client.last_trace_id().expect("reply must carry a trace id");
                client.close().unwrap();
                (c, tid)
            })
        })
        .collect();

    let mut ids = std::collections::HashSet::new();
    for h in handles {
        let (c, raw) = h.join().expect("client thread panicked");
        assert!(ids.insert(raw), "trace id {raw:016x} issued twice");
        let done = rec
            .find(TraceId(raw))
            .unwrap_or_else(|| panic!("client {c}'s trace {raw:016x} not in recorder"));
        assert!(
            done.sql.contains(&format!(" {c} AS tag")),
            "trace {raw:016x} recorded the wrong SQL: {}",
            done.sql
        );
        assert_ne!(done.query_id, 0, "trace must carry the registry query id");
        assert!(done.error.is_none());
        assert_eq!(done.rows, 5);
        for span in ["admission.wait", "parse", "bind", "optimize", "plan", "execute"] {
            assert!(
                done.has_span(span),
                "client {c}'s trace is missing the {span} span"
            );
        }
    }
    assert_eq!(ids.len(), CLIENTS);
    server.shutdown();
    rec.set_capacity(prev_capacity);
}

/// The completed-trace ring stays bounded under churn: with capacity 8,
/// forty traced queries retain at most the last eight, and the earliest
/// traces are evicted oldest-first.
#[test]
fn flight_recorder_ring_bound_holds_under_churn() {
    let _serial = trace_lock();
    let rec = lardb_obs::recorder();
    rec.set_enabled(true);
    rec.set_sample_every(1);
    let prev_capacity = rec.capacity();
    rec.set_capacity(8);

    let db = small_db();
    db.execute("CREATE TABLE churn (id INTEGER)").unwrap();
    db.execute("INSERT INTO churn VALUES (1), (2), (3)").unwrap();
    for i in 0..40 {
        db.execute(&format!("SELECT id, {i} AS ring_churn_marker FROM churn")).unwrap();
        assert!(
            rec.completed_len() <= 8,
            "ring exceeded its capacity: {} traces retained",
            rec.completed_len()
        );
    }
    let mine: Vec<String> = rec
        .completed_snapshot()
        .iter()
        .filter(|t| t.sql.contains("ring_churn_marker"))
        .map(|t| t.sql.clone())
        .collect();
    assert!(mine.len() <= 8, "ring retained {} marker traces", mine.len());
    assert!(
        mine.iter().any(|s| s.contains(" 39 AS ring_churn_marker")),
        "the newest trace must survive: {mine:?}"
    );
    for early in 0..32 {
        assert!(
            !mine.iter().any(|s| s.contains(&format!(" {early} AS ring_churn_marker"))),
            "trace {early} should have been evicted"
        );
    }
    rec.set_capacity(prev_capacity);
}
