//! End-to-end tests for the query server: concurrency, isolation,
//! quotas, kill, and disconnect cleanup — all over real TCP.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lardb::{Database, DatabaseConfig};
use lardb_server::{Client, QueryOutput, Server, ServerConfig, ServerError};

fn small_db() -> Database {
    Database::with_config(DatabaseConfig { workers: 2, ..DatabaseConfig::default() })
}

fn addr_of(server: &Server) -> String {
    server.local_addr().to_string()
}

fn rows_of(out: QueryOutput) -> Vec<lardb::Row> {
    match out {
        QueryOutput::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Tentpole acceptance: 64 concurrent clients over TCP see results
/// bit-identical to a serial run of the same queries.
#[test]
fn concurrent_tcp_clients_match_serial_execution() {
    const CLIENTS: usize = 64;
    const QUERIES_PER_CLIENT: usize = 3;

    let db = small_db();
    db.execute("CREATE TABLE nums (id INTEGER, v DOUBLE)").unwrap();
    let values: Vec<String> =
        (0..200).map(|i| format!("({i}, {})", (i % 17) as f64 * 0.5)).collect();
    db.execute(&format!("INSERT INTO nums VALUES {}", values.join(", "))).unwrap();

    // Serial reference answers, computed embedded (same engine, no wire).
    let queries: Vec<String> = (0..CLIENTS)
        .map(|c| {
            format!(
                "SELECT id, v FROM nums WHERE id >= {} AND id < {} ORDER BY id",
                (c % 8) * 20,
                (c % 8) * 20 + 20
            )
        })
        .collect();
    let expected: Vec<Vec<lardb::Row>> = queries
        .iter()
        .map(|q| db.execute(q).unwrap().into_rows().unwrap().rows)
        .collect();

    let server = Server::start(
        db,
        ServerConfig {
            max_sessions: CLIENTS + 4,
            max_concurrent: 8,
            queue_depth: CLIENTS,
            queue_wait_ms: 30_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let query = queries[c].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, &format!("t{}", c % 4), "").unwrap();
                let mut all = Vec::new();
                for _ in 0..QUERIES_PER_CLIENT {
                    all.push(rows_of(client.query(&query).unwrap()));
                }
                client.close().unwrap();
                all
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        let results = h.join().expect("client thread panicked");
        for rows in results {
            assert_eq!(
                rows, expected[c],
                "client {c} saw different rows over TCP than serial execution"
            );
        }
    }
    assert_eq!(server.connections(), 0, "all sessions closed");
    server.shutdown();
}

/// DDL racing reads: concurrent CREATE/INSERT/SELECT across sessions
/// never crashes the server and every reply is well-formed.
#[test]
fn ddl_racing_reads_is_safe() {
    let db = small_db();
    db.execute("CREATE TABLE base (id INTEGER)").unwrap();
    db.execute("INSERT INTO base VALUES (1), (2), (3)").unwrap();
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr, "writer", "").unwrap();
            for i in 0..10 {
                client.query(&format!("CREATE TABLE side_{i} (x INTEGER)")).unwrap();
                client.query(&format!("INSERT INTO side_{i} VALUES ({i})")).unwrap();
                client.query(&format!("DROP TABLE side_{i}")).unwrap();
            }
            client.close().unwrap();
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, "reader", "").unwrap();
                for _ in 0..15 {
                    // The base table is stable; side tables come and go.
                    // Reads of base must always succeed; reads of a side
                    // table may fail (dropped) but must be a clean error.
                    let rows =
                        rows_of(client.query("SELECT id FROM base ORDER BY id").unwrap());
                    assert_eq!(rows.len(), 3);
                    match client.query("SELECT x FROM side_3") {
                        Ok(_) | Err(ServerError::Query(_)) => {}
                        Err(other) => panic!("unexpected error class: {other}"),
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    server.shutdown();
}

/// A tenant whose quota cannot admit a query gets a typed `Saturated`
/// rejection — the server survives and other tenants are unaffected.
#[test]
fn quota_exhaustion_is_typed_saturation_not_a_crash() {
    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        // Dedicated governor so the tenant child budgets mean something.
        mem: Some(64),
        ..DatabaseConfig::default()
    });
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let server = Server::start(
        db,
        ServerConfig {
            // 1 MiB tenant budget with a floor demand larger than it:
            // admission can never reserve the floor for this tenant.
            tenant_mem_mb: Some(1),
            admission_floor_bytes: 8 * 1024 * 1024,
            queue_wait_ms: 200,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    let mut starved = Client::connect(&addr, "starved", "").unwrap();
    match starved.query("SELECT COUNT(*) AS n FROM t") {
        Err(ServerError::Saturated { reason }) => {
            assert!(
                reason.contains("quota") || reason.contains("saturated"),
                "reason should name the cause: {reason}"
            );
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    // The session (and the server) are still usable after the rejection.
    match starved.query("SELECT 1 AS one") {
        Err(ServerError::Saturated { .. }) => {}
        other => panic!("floor still unsatisfiable, expected Saturated, got {other:?}"),
    }
    starved.close().unwrap();

    server.shutdown();
}

/// Queue overflow rejects immediately with `Saturated` instead of
/// queueing unboundedly.
#[test]
fn queue_overflow_rejects_immediately() {
    let db = small_db();
    db.execute("CREATE TABLE big (a INTEGER)").unwrap();
    let vals: Vec<String> = (0..400).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let server = Server::start(
        db,
        ServerConfig {
            max_concurrent: 1,
            queue_depth: 1,
            queue_wait_ms: 5_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = addr_of(&server);

    // Saturate the single slot + single queue spot with slow cross joins,
    // then observe a fast rejection.
    let slow_sql =
        "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z WHERE x.a < 30";
    let saturated = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let saturated = Arc::clone(&saturated);
            std::thread::spawn(move || {
                // Stagger arrivals so occupancy is deterministic: slot,
                // queue spot, rejection.
                std::thread::sleep(Duration::from_millis(i as u64 * 150));
                let mut c = Client::connect(&addr, "load", "").unwrap();
                match c.query(slow_sql) {
                    Ok(_) => {}
                    Err(ServerError::Saturated { .. }) => {
                        saturated.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
                let _ = c.close();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // 1 running + 1 queued fit; at least the third must have been turned
    // away (timing may reject the queued one too).
    assert!(
        saturated.load(Ordering::SeqCst) >= 1,
        "expected at least one Saturated rejection"
    );
    server.shutdown();
}

/// KILL from a second session aborts a running query; afterwards the
/// governor ledger is zero and the spill directory is empty.
#[test]
fn kill_mid_query_reclaims_memory_and_spill() {
    let spill_dir = std::env::temp_dir().join(format!(
        "lardb-server-kill-test-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&spill_dir).unwrap();
    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        pool_workers: Some(2),
        mem: Some(8),
        spill_dir: Some(spill_dir.clone()),
        ..DatabaseConfig::default()
    });
    let governor = Arc::clone(db.memory().governor());
    db.execute("CREATE TABLE big (a INTEGER, b DOUBLE)").unwrap();
    let vals: Vec<String> = (0..600).map(|i| format!("({i}, {}.5)", i % 50)).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    // Session A runs a long cross join; session B finds and kills it.
    let victim = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, "victim", "").unwrap();
            let r = c.query(
                "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z \
                 WHERE x.b + y.b + z.b < 0.0",
            );
            let _ = c.close();
            r
        })
    };

    let mut killer = Client::connect(&addr, "killer", "").unwrap();
    // Find the victim's query id via SHOW SESSIONS.
    let mut query_id: Option<u64> = None;
    let deadline = Instant::now() + Duration::from_secs(10);
    while query_id.is_none() && Instant::now() < deadline {
        let rows = rows_of(killer.query("SHOW SESSIONS").unwrap());
        for r in &rows {
            // Columns: session_id, tenant, peer, state, query_id, sql, ...
            let tenant = r.value(1).to_string();
            if tenant.contains("victim") {
                if let Some(qid) = r.value(4).as_integer() {
                    query_id = Some(qid as u64);
                }
            }
        }
        if query_id.is_none() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let query_id = query_id.expect("victim query never showed up in SHOW SESSIONS");
    let killed_at = Instant::now();
    killer.kill(query_id).expect("kill should reach the running query");

    match victim.join().unwrap() {
        Err(ServerError::Killed(_)) => {}
        other => panic!("victim should die with Killed, got {other:?}"),
    }
    let kill_latency = killed_at.elapsed();
    assert!(
        kill_latency < Duration::from_secs(10),
        "kill took {kill_latency:?} to take effect"
    );

    killer.close().unwrap();
    server.shutdown();

    assert_eq!(
        governor.reserved(),
        0,
        "governor ledger must be zero after a killed query"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&spill_dir)
        .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "spill dir not empty after kill: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// A client that vanishes mid-query gets its query cancelled and its
/// session reaped; the governor ledger returns to zero.
#[test]
fn client_disconnect_aborts_running_query() {
    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        pool_workers: Some(2),
        mem: Some(8),
        ..DatabaseConfig::default()
    });
    let governor = Arc::clone(db.memory().governor());
    let sessions = Arc::clone(db.sessions());
    db.execute("CREATE TABLE big (a INTEGER)").unwrap();
    let vals: Vec<String> = (0..600).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    // Start a long query on a raw connection, then hang up without
    // reading the result.
    {
        use lardb_net::Message;
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        lardb_server::wire::send_message(
            &mut stream,
            &Message::Hello { tenant: "ghost".into(), auth: String::new() },
        )
        .unwrap();
        match lardb_server::wire::recv_message(&mut stream).unwrap() {
            lardb_server::wire::Recv::Msg(Message::Ok { .. }) => {}
            other => panic!("handshake failed: {other:?}"),
        }
        lardb_server::wire::send_message(
            &mut stream,
            &Message::Query {
                sql: "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z \
                      WHERE x.a + y.a + z.a < 0"
                    .into(),
            },
        )
        .unwrap();
        // Give the query a moment to start, then vanish.
        let deadline = Instant::now() + Duration::from_secs(10);
        while sessions.snapshot().iter().all(|s| s.state != "running")
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // `stream` drops here: EOF at the server.
    }

    // The session must disappear (query cancelled, thread unwound).
    let deadline = Instant::now() + Duration::from_secs(15);
    while sessions.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        sessions.active_sessions(),
        0,
        "disconnected session must be reaped"
    );
    server.shutdown();
    assert_eq!(
        governor.reserved(),
        0,
        "governor ledger must be zero after a disconnect-aborted query"
    );
}

/// Sessions beyond `max_sessions` are turned away with `Saturated`
/// before handshake.
#[test]
fn session_cap_rejects_excess_connections() {
    let db = small_db();
    let server = Server::start(
        db,
        ServerConfig { max_sessions: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = addr_of(&server);

    let _a = Client::connect(&addr, "one", "").unwrap();
    let _b = Client::connect(&addr, "two", "").unwrap();
    match Client::connect(&addr, "three", "") {
        Err(ServerError::Saturated { reason }) => {
            assert!(reason.contains("max sessions"), "got: {reason}");
        }
        Ok(_) => panic!("third connection should have been rejected"),
        Err(other) => panic!("expected Saturated, got {other}"),
    }
    server.shutdown();
}

/// Auth: wrong token is rejected, right token accepted.
#[test]
fn auth_token_enforced() {
    let db = small_db();
    let server = Server::start(
        db,
        ServerConfig { auth_token: Some("sesame".into()), ..ServerConfig::default() },
    )
    .unwrap();
    let addr = addr_of(&server);

    match Client::connect(&addr, "t", "wrong") {
        Err(ServerError::Auth(_)) => {}
        other => panic!("expected Auth error, got {:?}", other.map(|_| "client")),
    }
    let c = Client::connect(&addr, "t", "sesame").unwrap();
    c.close().unwrap();
    server.shutdown();
}

/// Prepared statements roundtrip: prepare once, execute twice.
#[test]
fn prepare_and_execute() {
    let db = small_db();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    let mut c = Client::connect(&addr, "t", "").unwrap();
    let stmt = c.prepare("SELECT COUNT(*) AS n FROM t").unwrap();
    for _ in 0..2 {
        let rows = rows_of(c.execute(stmt).unwrap());
        assert_eq!(rows[0].value(0).as_integer(), Some(3));
    }
    assert!(matches!(c.execute(999), Err(ServerError::Query(_))));
    assert!(matches!(c.prepare("SELEKT nope"), Err(ServerError::Query(_))));
    c.close().unwrap();
    server.shutdown();
}

/// `server.*` metrics move: admitted counts grow, sessions gauge returns
/// to zero after close.
#[test]
fn server_metrics_are_published() {
    let db = small_db();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = addr_of(&server);

    let admitted_before =
        lardb_obs::global().counter("server.queries_admitted").get();
    let mut c = Client::connect(&addr, "t", "").unwrap();
    let rows = rows_of(c.query("SELECT id FROM t").unwrap());
    assert_eq!(rows.len(), 1);
    let admitted_after =
        lardb_obs::global().counter("server.queries_admitted").get();
    assert!(
        admitted_after > admitted_before,
        "queries_admitted should count admitted queries"
    );
    // SHOW METRICS over the wire includes the server family.
    let metric_rows = rows_of(c.query("SHOW METRICS").unwrap());
    let names: Vec<String> =
        metric_rows.iter().map(|r| r.value(0).to_string()).collect();
    assert!(
        names.iter().any(|n| n.contains("server.queries_admitted")),
        "SHOW METRICS should include server.* metrics, got {names:?}"
    );
    c.close().unwrap();
    server.shutdown();
}
