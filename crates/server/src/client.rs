//! Minimal client for the query server: connect, run statements, kill,
//! close.
//!
//! The client verifies every result stream against its fin summary —
//! frame count, row count, and the FNV-1a checksum over the encoded
//! frame bytes — exactly like an exchange receiver, so a truncated or
//! corrupted result surfaces as [`ServerError::Protocol`], never as a
//! silently short row set.

use std::net::TcpStream;
use std::time::Duration;

use lardb_net::codec::{checksum_update, Frame, CHECKSUM_SEED};
use lardb_net::{msg, Message};
use lardb_storage::{Row, Schema};

use crate::wire::{recv_message, send_message, Recv};
use crate::ServerError;

/// How long the client waits for one server reply before giving up.
/// Generous: covers queued admission (`queue_wait_ms`) plus execution.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// What one statement produced, client-side.
#[derive(Debug)]
pub enum QueryOutput {
    /// SELECT results (fin-verified).
    Rows {
        /// Output schema.
        schema: Schema,
        /// All result rows.
        rows: Vec<Row>,
    },
    /// DDL completed.
    Done,
    /// INSERT / CTAS row count.
    Inserted(u64),
    /// EXPLAIN (or other textual) output.
    Text(String),
}

impl QueryOutput {
    /// Renders rows as a simple ` | `-separated table (same shape as
    /// `QueryResult::display_table`); other outputs as one line.
    pub fn display(&self) -> String {
        match self {
            QueryOutput::Rows { schema, rows } => {
                let mut out = String::new();
                let names: Vec<String> =
                    schema.columns().iter().map(|c| c.name.clone()).collect();
                out.push_str(&names.join(" | "));
                out.push('\n');
                for r in rows {
                    let vals: Vec<String> =
                        r.values().iter().map(|v| v.to_string()).collect();
                    out.push_str(&vals.join(" | "));
                    out.push('\n');
                }
                out
            }
            QueryOutput::Done => "OK\n".to_string(),
            QueryOutput::Inserted(n) => format!("INSERT {n}\n"),
            QueryOutput::Text(t) => format!("{t}\n"),
        }
    }
}

/// A connected session.
pub struct Client {
    stream: TcpStream,
    session_id: u64,
    /// Trace id from the most recent result stream's trace frame, if the
    /// server traced that query (see `FlightRecorder`).
    last_trace_id: Option<u64>,
}

impl Client {
    /// Connects to `addr` (`host:port`) and performs the handshake as
    /// `tenant` with `auth` (empty string for open servers).
    pub fn connect(addr: &str, tenant: &str, auth: &str) -> Result<Client, ServerError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
        send_message(
            &mut stream,
            &Message::Hello { tenant: tenant.to_string(), auth: auth.to_string() },
        )?;
        match recv_reply(&mut stream)? {
            Message::Ok { code: msg::OK_HELLO, value, .. } => {
                Ok(Client { stream, session_id: value, last_trace_id: None })
            }
            Message::Error { code, message } => Err(map_error(code, message)),
            other => Err(ServerError::Protocol(format!(
                "unexpected handshake reply: {other:?}"
            ))),
        }
    }

    /// The server-assigned session id (as shown by `SHOW SESSIONS`).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Trace id the server attached to the most recent row-producing
    /// result, or `None` when that query was not traced. Lets a client
    /// correlate its own statements with server-side `SHOW QUERIES` /
    /// flight-recorder output.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.last_trace_id
    }

    /// Runs one SQL statement and collects its full result.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutput, ServerError> {
        send_message(&mut self.stream, &Message::Query { sql: sql.to_string() })?;
        self.read_result()
    }

    /// Parses and stores a statement server-side; returns its id.
    pub fn prepare(&mut self, sql: &str) -> Result<u64, ServerError> {
        send_message(&mut self.stream, &Message::Prepare { sql: sql.to_string() })?;
        match recv_reply(&mut self.stream)? {
            Message::Ok { code: msg::OK_PREPARED, value, .. } => Ok(value),
            Message::Error { code, message } => Err(map_error(code, message)),
            other => Err(ServerError::Protocol(format!("unexpected PREPARE reply: {other:?}"))),
        }
    }

    /// Runs a previously prepared statement.
    pub fn execute(&mut self, stmt_id: u64) -> Result<QueryOutput, ServerError> {
        send_message(&mut self.stream, &Message::Execute { stmt_id })?;
        self.read_result()
    }

    /// Kills a running query by id (its own or any other session's).
    /// `Ok(())` means the kill was delivered to a running query.
    pub fn kill(&mut self, query_id: u64) -> Result<(), ServerError> {
        send_message(&mut self.stream, &Message::Kill { query_id })?;
        match recv_reply(&mut self.stream)? {
            Message::Ok { code: msg::OK_KILLED, .. } => Ok(()),
            Message::Error { code, message } => Err(map_error(code, message)),
            other => Err(ServerError::Protocol(format!("unexpected KILL reply: {other:?}"))),
        }
    }

    /// Orderly shutdown: tells the server, waits for the ack, closes.
    pub fn close(mut self) -> Result<(), ServerError> {
        send_message(&mut self.stream, &Message::Close)?;
        match recv_reply(&mut self.stream)? {
            Message::Ok { code: msg::OK_CLOSED, .. } => Ok(()),
            Message::Error { code, message } => Err(map_error(code, message)),
            other => Err(ServerError::Protocol(format!("unexpected CLOSE reply: {other:?}"))),
        }
    }

    /// Reads one statement outcome: an `Ok`/`Error` control frame, or a
    /// schema/rows/fin data stream (verified against the fin summary).
    fn read_result(&mut self) -> Result<QueryOutput, ServerError> {
        let mut schema: Option<Schema> = None;
        let mut rows: Vec<Row> = Vec::new();
        let mut frames: u64 = 0;
        let mut checksum = CHECKSUM_SEED;
        self.last_trace_id = None;
        loop {
            let message = recv_reply(&mut self.stream)?;
            match message {
                Message::Ok { code: msg::OK_DONE, .. } => return Ok(QueryOutput::Done),
                Message::Ok { code: msg::OK_INSERTED, value, .. } => {
                    return Ok(QueryOutput::Inserted(value))
                }
                Message::Ok { code: msg::OK_TEXT, text, .. } => {
                    return Ok(QueryOutput::Text(text))
                }
                Message::Error { code, message } => return Err(map_error(code, message)),
                Message::Data(frame) => match frame {
                    Frame::Schema(s) => {
                        let bytes = lardb_net::encode_message(&Message::Data(Frame::Schema(
                            s.clone(),
                        )));
                        checksum = checksum_update(checksum, &bytes);
                        frames += 1;
                        schema = Some(s);
                    }
                    Frame::Trace(id) => {
                        // Trace context precedes the schema frame; counted
                        // and checksummed like any other pre-fin frame.
                        let bytes =
                            lardb_net::encode_message(&Message::Data(Frame::Trace(id)));
                        checksum = checksum_update(checksum, &bytes);
                        frames += 1;
                        self.last_trace_id = Some(id);
                    }
                    Frame::Rows(batch) => {
                        let bytes = lardb_net::encode_message(&Message::Data(Frame::Rows(
                            batch.clone(),
                        )));
                        checksum = checksum_update(checksum, &bytes);
                        frames += 1;
                        rows.extend(batch);
                    }
                    Frame::Fin(fin) => {
                        let Some(schema) = schema else {
                            return Err(ServerError::Protocol(
                                "fin before schema in result stream".to_string(),
                            ));
                        };
                        if fin.frames != frames
                            || fin.rows != rows.len() as u64
                            || fin.checksum != checksum
                        {
                            return Err(ServerError::Protocol(format!(
                                "result stream failed fin verification: got {} frames / {} \
                                 rows / checksum {:#x}, fin says {} / {} / {:#x}",
                                frames,
                                rows.len(),
                                checksum,
                                fin.frames,
                                fin.rows,
                                fin.checksum
                            )));
                        }
                        return Ok(QueryOutput::Rows { schema, rows });
                    }
                },
                other => {
                    return Err(ServerError::Protocol(format!(
                        "unexpected message in result stream: {other:?}"
                    )))
                }
            }
        }
    }
}

/// One blocking reply (timeouts are errors client-side: the server
/// always answers a request).
fn recv_reply(stream: &mut TcpStream) -> Result<Message, ServerError> {
    match recv_message(stream)? {
        Recv::Msg(m) => Ok(m),
        Recv::Closed => Err(ServerError::Io("server closed the connection".to_string())),
        Recv::TimedOut => Err(ServerError::Io(format!(
            "no reply from server within {REPLY_TIMEOUT:?}"
        ))),
    }
}

fn map_error(code: u16, message: String) -> ServerError {
    match code {
        msg::ERR_SATURATED => ServerError::Saturated { reason: message },
        msg::ERR_AUTH => ServerError::Auth(message),
        msg::ERR_KILLED => ServerError::Killed(message),
        msg::ERR_QUERY => ServerError::Query(message),
        _ => ServerError::Protocol(message),
    }
}
