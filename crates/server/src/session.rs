//! One connection's lifecycle: handshake, query loop, result streaming,
//! kill and disconnect handling.
//!
//! Each session owns its socket and runs queries on a helper thread so
//! the socket stays pollable while a query executes: a `Kill` for any
//! query, a `Close`, or an EOF (client vanished) arriving mid-query is
//! acted on immediately — disconnects cancel the running query through
//! its [`CancelToken`], which the executor's morsel loops poll. The
//! session never returns to the idle loop until the helper thread has
//! finished, so governor reservations and spill files are provably
//! released before the session is deregistered.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lardb::{CancelToken, Database, EngineError, PreparedStatement, QueryResult, Response};
use lardb_exec::ExecError;
use lardb_net::codec::{checksum_update, FinSummary, Frame, CHECKSUM_SEED};
use lardb_net::{msg, Message};

use crate::wire::{recv_message, send_message, Recv};
use crate::Shared;

/// Socket poll granularity: how quickly the session notices shutdown,
/// kill traffic, and disconnects.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// How long a fresh connection may sit silent before `Hello`.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Rows per result frame (matches the exchange's batching scale).
const ROWS_PER_FRAME: usize = 256;

/// Serves one accepted connection to completion. Errors are terminal for
/// the connection only; the server keeps running.
pub(crate) fn run(shared: &Shared, mut stream: TcpStream, peer: SocketAddr) {
    if stream.set_read_timeout(Some(POLL_TIMEOUT)).is_err() {
        return;
    }
    // Session cap: this connection was already counted by the accept
    // loop, so `>` (not `>=`) means someone beyond the cap.
    if shared.connections.load(Ordering::SeqCst) > shared.cfg.max_sessions {
        lardb_obs::global().counter("server.sessions_rejected").inc();
        let _ = send_message(
            &mut stream,
            &Message::Error {
                code: msg::ERR_SATURATED,
                message: format!("server at max sessions ({})", shared.cfg.max_sessions),
            },
        );
        return;
    }
    let Some(tenant) = handshake(shared, &mut stream) else {
        return;
    };
    let session_id = shared.db.sessions().open(&tenant, &peer.to_string());
    let db = shared
        .tenant_db(&tenant)
        .with_session_label(format!("session {session_id} tenant {tenant}"));
    if send_message(
        &mut stream,
        &Message::Ok { code: msg::OK_HELLO, value: session_id, text: tenant.clone() },
    )
    .is_err()
    {
        shared.db.sessions().close(session_id);
        return;
    }
    serve_session(shared, &db, &mut stream, session_id, &tenant);
    shared.db.sessions().close(session_id);
}

/// Waits for `Hello` and validates auth. Returns the tenant name, or
/// `None` when the connection should just be dropped.
fn handshake(shared: &Shared, stream: &mut TcpStream) -> Option<String> {
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    loop {
        match recv_message(stream) {
            Ok(Recv::Msg(Message::Hello { tenant, auth })) => {
                if let Some(expected) = &shared.cfg.auth_token {
                    if &auth != expected {
                        let _ = send_message(
                            stream,
                            &Message::Error {
                                code: msg::ERR_AUTH,
                                message: "bad auth token".to_string(),
                            },
                        );
                        return None;
                    }
                }
                let tenant = if tenant.is_empty() { "default".to_string() } else { tenant };
                return Some(tenant);
            }
            Ok(Recv::Msg(_)) => {
                let _ = send_message(
                    stream,
                    &Message::Error {
                        code: msg::ERR_PROTOCOL,
                        message: "expected HELLO first".to_string(),
                    },
                );
                return None;
            }
            Ok(Recv::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    return None;
                }
            }
            Ok(Recv::Closed) | Err(_) => return None,
        }
    }
}

/// The post-handshake request loop.
fn serve_session(
    shared: &Shared,
    db: &Database,
    stream: &mut TcpStream,
    session_id: u64,
    tenant: &str,
) {
    // Statements prepared on this session: parsed (and, for cacheable
    // SELECTs, bound + optimized into the shared plan cache) exactly once
    // at Prepare; every Execute reuses the stored handle instead of
    // re-planning the SQL text. Keyed by statement id — sessions
    // accumulate statements, so lookup must not degrade linearly.
    let mut prepared: HashMap<u64, PreparedStatement> = HashMap::new();
    let mut next_stmt: u64 = 1;
    loop {
        match recv_message(stream) {
            Ok(Recv::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(Recv::Closed) | Err(_) => return,
            Ok(Recv::Msg(message)) => match message {
                Message::Query { sql } => {
                    if run_query(shared, db, stream, session_id, tenant, &sql, None).is_err() {
                        return;
                    }
                }
                Message::Prepare { sql } => {
                    let reply = match db.prepare(&sql) {
                        Ok(stmt) => {
                            let id = next_stmt;
                            next_stmt += 1;
                            prepared.insert(id, stmt);
                            Message::Ok { code: msg::OK_PREPARED, value: id, text: String::new() }
                        }
                        Err(e) => {
                            Message::Error { code: msg::ERR_QUERY, message: e.to_string() }
                        }
                    };
                    if send_message(stream, &reply).is_err() {
                        return;
                    }
                }
                Message::Execute { stmt_id } => {
                    match prepared.get(&stmt_id) {
                        Some(stmt) => {
                            let stmt = stmt.clone();
                            if run_query(
                                shared,
                                db,
                                stream,
                                session_id,
                                tenant,
                                stmt.sql(),
                                Some(&stmt),
                            )
                            .is_err()
                            {
                                return;
                            }
                        }
                        None => {
                            let reply = Message::Error {
                                code: msg::ERR_QUERY,
                                message: format!("unknown prepared statement id {stmt_id}"),
                            };
                            if send_message(stream, &reply).is_err() {
                                return;
                            }
                        }
                    }
                }
                Message::Kill { query_id } => {
                    if send_message(stream, &kill_reply(db, query_id)).is_err() {
                        return;
                    }
                }
                Message::Close => {
                    let _ = send_message(
                        stream,
                        &Message::Ok { code: msg::OK_CLOSED, value: session_id, text: String::new() },
                    );
                    return;
                }
                other => {
                    let reply = Message::Error {
                        code: msg::ERR_PROTOCOL,
                        message: format!("unexpected message in idle session: {other:?}"),
                    };
                    if send_message(stream, &reply).is_err() {
                        return;
                    }
                }
            },
        }
    }
}

fn kill_reply(db: &Database, query_id: u64) -> Message {
    if db.sessions().kill(query_id) {
        Message::Ok { code: msg::OK_KILLED, value: query_id, text: String::new() }
    } else {
        Message::Error {
            code: msg::ERR_QUERY,
            message: format!("no running query with id {query_id} (see SHOW SESSIONS)"),
        }
    }
}

/// Admits, executes, and streams one query. `Err(())` means the
/// connection is gone and the session should end; protocol-level
/// failures (saturation, query errors) are replies, not `Err`. With
/// `prepared`, execution reuses the stored parse tree and shape key
/// instead of re-planning `sql`.
#[allow(clippy::too_many_arguments)]
fn run_query(
    shared: &Shared,
    db: &Database,
    stream: &mut TcpStream,
    session_id: u64,
    tenant: &str,
    sql: &str,
    prepared: Option<&PreparedStatement>,
) -> Result<(), ()> {
    // Mint the trace BEFORE admission so queue wait is on the trace; the
    // recorder applies its sampling policy here.
    let trace = lardb_obs::recorder().start(sql, tenant);
    let floor_gov = shared.floor_governor(tenant);
    let t_admit = Instant::now();
    let permit = match shared.admission.admit(tenant, floor_gov.as_ref()) {
        Ok(p) => p,
        Err(e) => {
            let (code, reason) = match e {
                crate::ServerError::Saturated { reason } => (msg::ERR_SATURATED, reason),
                other => (msg::ERR_QUERY, other.to_string()),
            };
            if let Some(t) = &trace {
                lardb_obs::recorder().finish(t, Some(&reason));
            }
            let message = match &trace {
                Some(t) => format!("{reason} [trace {}]", t.id()),
                None => reason,
            };
            return send_message(stream, &Message::Error { code, message }).map_err(drop);
        }
    };
    let queue_wait = t_admit.elapsed();
    lardb_obs::global()
        .histogram(&format!("server.tenant.{tenant}.queue_wait_ms"))
        .observe(queue_wait.as_millis() as u64);
    if let Some(t) = &trace {
        t.set_queue_wait_us(queue_wait.as_micros() as u64);
        t.record(
            "admission.wait",
            "admission",
            t_admit,
            queue_wait,
            vec![("tenant", tenant.to_string())],
        );
    }

    let cancel = CancelToken::new();
    let query_id = db.sessions().begin_query(session_id, sql, &cancel);
    if let Some(t) = &trace {
        t.set_query_id(query_id);
    }

    // Execute on a helper thread so this thread can keep polling the
    // socket for Kill/Close/disconnect.
    let (tx, rx) = mpsc::channel();
    let exec_db = db.clone();
    let exec_sql = sql.to_string();
    let exec_cancel = cancel.clone();
    let exec_trace = trace.clone();
    let exec_prepared = prepared.cloned();
    let exec = std::thread::Builder::new()
        .name(format!("lardb-query-{query_id}"))
        .spawn(move || {
            let result = match (&exec_trace, &exec_prepared) {
                (Some(t), Some(p)) => {
                    exec_db.execute_prepared_with_trace(p, &exec_cancel, t)
                }
                (None, Some(p)) => exec_db.execute_prepared_with_cancel(p, &exec_cancel),
                (Some(t), None) => exec_db.execute_with_trace(&exec_sql, &exec_cancel, t),
                (None, None) => exec_db.execute_with_cancel(&exec_sql, &exec_cancel),
            };
            let _ = tx.send(result);
        });
    let exec = match exec {
        Ok(h) => h,
        Err(e) => {
            db.sessions().end_query(session_id);
            drop(permit);
            return send_message(
                stream,
                &Message::Error {
                    code: msg::ERR_QUERY,
                    message: format!("could not spawn query thread: {e}"),
                },
            )
            .map_err(drop);
        }
    };

    let mut disconnected = false;
    let result = loop {
        match rx.try_recv() {
            Ok(result) => break result,
            Err(mpsc::TryRecvError::Disconnected) => {
                break Err(EngineError::Exec(ExecError::Cancelled(
                    "query thread died".to_string(),
                )))
            }
            Err(mpsc::TryRecvError::Empty) => {}
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            cancel.cancel();
        }
        // The read timeout doubles as the poll tick.
        match recv_message(stream) {
            Ok(Recv::TimedOut) => {}
            Ok(Recv::Closed) | Err(_) => {
                // Client vanished mid-query: cancel and wait for the
                // executor to unwind (releasing memory + spill files).
                cancel.cancel();
                disconnected = true;
                break rx.recv().unwrap_or_else(|_| {
                    Err(EngineError::Exec(ExecError::Cancelled(
                        "query thread died".to_string(),
                    )))
                });
            }
            Ok(Recv::Msg(Message::Kill { query_id: target })) => {
                // In-band kill (possibly of this very query). The ack is
                // sent before any result frames.
                if send_message(stream, &kill_reply(db, target)).is_err() {
                    cancel.cancel();
                    disconnected = true;
                }
            }
            Ok(Recv::Msg(Message::Close)) => {
                // Orderly close while a query runs: abort it, then close.
                cancel.cancel();
                let result = rx.recv().unwrap_or_else(|_| {
                    Err(EngineError::Exec(ExecError::Cancelled(
                        "query thread died".to_string(),
                    )))
                });
                let _ = exec.join();
                db.sessions().end_query(session_id);
                drop(permit);
                drop(result);
                let _ = send_message(
                    stream,
                    &Message::Ok { code: msg::OK_CLOSED, value: session_id, text: String::new() },
                );
                return Err(());
            }
            Ok(Recv::Msg(other)) => {
                let reply = Message::Error {
                    code: msg::ERR_PROTOCOL,
                    message: format!("unexpected message while a query is running: {other:?}"),
                };
                if send_message(stream, &reply).is_err() {
                    cancel.cancel();
                    disconnected = true;
                }
            }
        }
    };

    let _ = exec.join();
    db.sessions().end_query(session_id);
    drop(permit);
    lardb_obs::global()
        .histogram(&format!("server.tenant.{tenant}.query_ms"))
        .observe(t_admit.elapsed().saturating_sub(queue_wait).as_millis() as u64);

    if disconnected {
        drop(result);
        return Err(());
    }
    // Correlation stamp for error replies and the result stream: the
    // query id (always) and the trace id (when this query was sampled).
    let ids = match &trace {
        Some(t) => format!(" [query {query_id} trace {}]", t.id()),
        None => format!(" [query {query_id}]"),
    };
    let trace_id = trace.as_ref().map(|t| t.id().0);
    match result {
        Ok(Response::Rows(q)) => stream_rows(stream, q, trace_id).map_err(drop),
        Ok(Response::Done) => send_message(
            stream,
            &Message::Ok { code: msg::OK_DONE, value: 0, text: String::new() },
        )
        .map_err(drop),
        Ok(Response::Inserted(n)) => send_message(
            stream,
            &Message::Ok { code: msg::OK_INSERTED, value: n as u64, text: String::new() },
        )
        .map_err(drop),
        Ok(Response::Explained(text)) => {
            send_message(stream, &Message::Ok { code: msg::OK_TEXT, value: 0, text })
                .map_err(drop)
        }
        Err(EngineError::Exec(ExecError::Cancelled(m))) => send_message(
            stream,
            &Message::Error { code: msg::ERR_KILLED, message: format!("{m}{ids}") },
        )
        .map_err(drop),
        Err(e) => send_message(
            stream,
            &Message::Error { code: msg::ERR_QUERY, message: format!("{e}{ids}") },
        )
        .map_err(drop),
    }
}

/// Streams a result as exchange-format data frames: an optional trace
/// frame (when the query was traced), schema, row batches, then a fin
/// summary the client re-verifies (frames / rows / checksum).
fn stream_rows(
    stream: &mut TcpStream,
    q: QueryResult,
    trace_id: Option<u64>,
) -> std::io::Result<()> {
    let mut frames: u64 = 0;
    let mut checksum = CHECKSUM_SEED;
    let mut send_data = |stream: &mut TcpStream, frame: Frame| -> std::io::Result<()> {
        let bytes = lardb_net::encode_message(&Message::Data(frame));
        checksum = checksum_update(checksum, &bytes);
        frames += 1;
        crate::wire::send_bytes(stream, &bytes)
    };
    if let Some(id) = trace_id {
        send_data(stream, Frame::Trace(id))?;
    }
    send_data(stream, Frame::Schema(q.schema))?;
    let total_rows = q.rows.len() as u64;
    for chunk in q.rows.chunks(ROWS_PER_FRAME) {
        send_data(stream, Frame::Rows(chunk.to_vec()))?;
    }
    let fin = FinSummary { frames, rows: total_rows, checksum };
    send_message(stream, &Message::Data(Frame::Fin(fin)))
}
