//! # lardb-server — multi-tenant query server with admission control
//!
//! `lardb serve` turns an embedded [`Database`] into a network service:
//!
//! - **Wire protocol**: length-prefixed frames over TCP carrying the
//!   server control messages (`Hello`/`Query`/`Prepare`/`Execute`/
//!   `Kill`/`Close` → `Ok`/`Error`) from `lardb_net::msg`, plus the
//!   *unchanged* exchange data frames (schema/rows/fin) for query
//!   results — the client verifies the fin checksum exactly like an
//!   exchange receiver, so truncated results are detected, never
//!   silently short.
//! - **Sessions**: one thread per connection, registered in the shared
//!   [`SessionRegistry`](lardb::SessionRegistry) so `SHOW SESSIONS` and
//!   `KILL <query-id>` work across connections.
//! - **Admission control**: a bounded FIFO queue in front of a global
//!   concurrency cap and per-tenant slots; overload is typed
//!   ([`ServerError::Saturated`]), never an OOM or a hung client.
//! - **Tenant quotas**: each tenant gets a child
//!   [`MemoryGovernor`] under the server's
//!   governor, so one tenant's joins spill (or get rejected at
//!   admission) instead of eating another tenant's budget.
//! - **Cancellation**: `KILL` flips the running query's
//!   [`CancelToken`](lardb::CancelToken); client disconnects are
//!   detected mid-query and cancel the same way. Both paths release the
//!   governor ledger and spill files before the session ends.
//!
//! ```no_run
//! use lardb::Database;
//! use lardb_server::{Client, Server, ServerConfig};
//!
//! let db = Database::new(4);
//! let server = Server::start(db, ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//!
//! let mut client = Client::connect(&addr.to_string(), "acme", "").unwrap();
//! client.query("CREATE TABLE t (id INTEGER)").unwrap();
//! client.query("INSERT INTO t VALUES (1), (2)").unwrap();
//! let out = client.query("SELECT COUNT(*) AS n FROM t").unwrap();
//! println!("{out:?}");
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod session;
pub mod wire;

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lardb::{Database, MemoryConfig};
use lardb_buf::MemoryGovernor;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit};
pub use client::{Client, QueryOutput};

/// Server knobs (`lardb-cli serve` exposes these as flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address. Port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Maximum simultaneously connected sessions; further connections are
    /// turned away with a `Saturated` error before handshake.
    pub max_sessions: usize,
    /// Queries allowed to execute concurrently across all sessions.
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot; the next one is rejected
    /// immediately.
    pub queue_depth: usize,
    /// Longest a query waits in the admission queue before a typed
    /// `Saturated` rejection.
    pub queue_wait_ms: u64,
    /// Per-tenant memory budget in MiB. `None` disables tenant
    /// sub-governors (all sessions share the database's governor).
    pub tenant_mem_mb: Option<u64>,
    /// Concurrent queries allowed per tenant (`0` = no per-tenant cap).
    pub tenant_slots: usize,
    /// Bytes reserved from the tenant's governor at admission and held
    /// for the query's lifetime, so quota exhaustion surfaces as
    /// `Saturated` at admission instead of an execution failure.
    /// Ignored when `tenant_mem_mb` is `None`.
    pub admission_floor_bytes: u64,
    /// Shared-secret token. `None` runs the server open; `Some` rejects
    /// handshakes whose `Hello.auth` does not match.
    pub auth_token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            max_concurrent: 8,
            queue_depth: 16,
            queue_wait_ms: 2_000,
            tenant_mem_mb: None,
            tenant_slots: 0,
            admission_floor_bytes: 256 * 1024,
            auth_token: None,
        }
    }
}

/// Anything the server or client can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Admission control rejected the query (queue full, wait timed out,
    /// or the tenant's memory quota never admitted the floor). Typed so
    /// callers can back off and retry instead of treating it as failure.
    Saturated {
        /// Human-readable cause.
        reason: String,
    },
    /// Handshake rejected (bad auth token).
    Auth(String),
    /// The query was killed (`KILL` statement or client disconnect).
    Killed(String),
    /// The query failed in the engine.
    Query(String),
    /// Malformed or unexpected protocol traffic (including fin-summary
    /// mismatches on the result stream).
    Protocol(String),
    /// Transport-level failure.
    Io(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Saturated { reason } => write!(f, "saturated: {reason}"),
            ServerError::Auth(m) => write!(f, "authentication failed: {m}"),
            ServerError::Killed(m) => write!(f, "query killed: {m}"),
            ServerError::Query(m) => write!(f, "query failed: {m}"),
            ServerError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServerError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e.to_string())
    }
}

/// State shared by the accept loop and every session thread.
pub(crate) struct Shared {
    pub(crate) db: Database,
    pub(crate) cfg: ServerConfig,
    pub(crate) admission: Arc<AdmissionController>,
    /// Lazily created per-tenant sub-governors (children of the
    /// database's governor), kept so reconnecting tenants keep billing
    /// the same ledger.
    tenants: Mutex<HashMap<String, Arc<MemoryGovernor>>>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Connections currently alive (pre- and post-handshake), enforced
    /// against `max_sessions` at accept time.
    pub(crate) connections: AtomicUsize,
}

impl Shared {
    /// The database clone a session of `tenant` runs on: shares catalog,
    /// pool, sessions and profile state with every other session, but —
    /// when tenant quotas are on — bills memory to the tenant's child
    /// governor (gauged as `server.tenant.<tenant>.reserved_bytes`).
    pub(crate) fn tenant_db(&self, tenant: &str) -> Database {
        let db = self.db.clone();
        match self.cfg.tenant_mem_mb {
            None => db,
            Some(mb) => {
                let gov = self.tenant_governor(tenant, mb);
                let spill = self.db.memory().spill_dir().to_path_buf();
                db.with_memory_config(MemoryConfig::with_governor(gov, spill))
            }
        }
    }

    fn tenant_governor(&self, tenant: &str, mb: u64) -> Arc<MemoryGovernor> {
        let mut map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(tenant.to_string()).or_insert_with(|| {
            self.db
                .memory()
                .governor()
                .child(Some(mb * 1024 * 1024), format!("server.tenant.{tenant}"))
        }))
    }

    /// The governor admission should reserve the floor from (the tenant's
    /// child when quotas are on, nothing otherwise — without quotas there
    /// is no per-tenant ledger to protect).
    pub(crate) fn floor_governor(&self, tenant: &str) -> Option<Arc<MemoryGovernor>> {
        self.cfg
            .tenant_mem_mb
            .map(|mb| self.tenant_governor(tenant, mb))
    }
}

/// A running query server. Dropping it (or calling [`shutdown`]) stops
/// the accept loop and joins every session thread.
///
/// [`shutdown`]: Server::shutdown
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts accepting connections. Each accepted
    /// connection is served on its own thread; queries run under the
    /// shared admission controller.
    pub fn start(db: Database, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let admission = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: cfg.max_concurrent.max(1),
            queue_depth: cfg.queue_depth,
            queue_wait_ms: cfg.queue_wait_ms,
            tenant_slots: cfg.tenant_slots,
            admission_floor_bytes: cfg.admission_floor_bytes,
        }));
        let shared = Arc::new(Shared {
            db,
            cfg,
            admission,
            tenants: Mutex::new(HashMap::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            connections: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("lardb-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Open connections right now (pre- and post-handshake).
    pub fn connections(&self) -> usize {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Stops accepting, waits for session threads to notice the shutdown
    /// flag and exit, then returns. In-flight queries are cancelled.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                sessions.retain(|h| !h.is_finished());
                let session_shared = Arc::clone(&shared);
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let handle = std::thread::Builder::new()
                    .name(format!("lardb-session-{peer}"))
                    .spawn(move || {
                        session::run(&session_shared, stream, peer);
                        session_shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                match handle {
                    Ok(h) => sessions.push(h),
                    Err(_) => {
                        // Thread spawn failed; the connection drops and the
                        // count must not leak.
                        shared.connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in sessions {
        let _ = h.join();
    }
}
