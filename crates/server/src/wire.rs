//! Length-prefixed message framing over a [`TcpStream`].
//!
//! Same discipline as the exchange transport: every message is one
//! `u32`-LE length prefix followed by that many bytes of an encoded
//! [`Message`]. The prefix and payload are written
//! with a single `write_all` so a peer never observes a torn header.
//!
//! Reads distinguish three outcomes the session loop cares about:
//! a complete message, an orderly close (EOF *between* messages), and a
//! read timeout (EOF or timeout *inside* a message is a protocol error —
//! the peer died mid-frame).

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;

use lardb_net::{decode_message, encode_message, Message};

/// Default cap on one wire message (64 MiB, matching the exchange
/// transport's `DEFAULT_MAX_FRAME_BYTES`).
pub const MAX_WIRE_BYTES: usize = 64 * 1024 * 1024;

/// Outcome of one read attempt.
#[derive(Debug)]
pub enum Recv {
    /// A complete message arrived.
    Msg(Message),
    /// The peer closed the connection cleanly (EOF at a message
    /// boundary).
    Closed,
    /// The configured read timeout elapsed with no traffic.
    TimedOut,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Sends one message: `u32` LE length prefix + encoded bytes, written as
/// one buffer.
pub fn send_message(stream: &mut TcpStream, msg: &Message) -> io::Result<()> {
    send_bytes(stream, &encode_message(msg))
}

/// Sends pre-encoded message bytes (used by the result streamer, which
/// already has the bytes in hand for checksumming).
pub fn send_bytes(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_WIRE_BYTES {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("outgoing message of {} bytes exceeds cap", body.len()),
        ));
    }
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Receives one message, honouring the stream's configured read timeout.
///
/// A timeout *before any byte* of the length prefix yields
/// [`Recv::TimedOut`]; EOF there yields [`Recv::Closed`]. Once the first
/// byte has arrived the rest of the message must follow: EOF or timeout
/// mid-message is an error (the peer vanished mid-frame).
pub fn recv_message(stream: &mut TcpStream) -> io::Result<Recv> {
    let mut prefix = [0u8; 4];
    // First byte decides between idle-timeout / clean-close / traffic.
    let n = match stream.read(&mut prefix[..1]) {
        Ok(0) => return Ok(Recv::Closed),
        Ok(n) => n,
        Err(e) if is_timeout(&e) => return Ok(Recv::TimedOut),
        Err(e) if e.kind() == ErrorKind::Interrupted => 0,
        Err(e) => return Err(e),
    };
    read_remaining(stream, &mut prefix[n..])?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_WIRE_BYTES {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("incoming message claims {len} bytes (cap {MAX_WIRE_BYTES})"),
        ));
    }
    let mut body = vec![0u8; len];
    read_remaining(stream, &mut body)?;
    let msg = decode_message(&body)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("bad message: {e}")))?;
    Ok(Recv::Msg(msg))
}

/// `read_exact` that retries timeouts: once a message has started, a
/// pause mid-frame means "keep waiting", not "drop bytes on the floor".
/// EOF mid-frame is an `UnexpectedEof` error.
fn read_remaining(stream: &mut TcpStream, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match stream.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-message",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn roundtrip_over_loopback() {
        let (mut c, mut s) = pair();
        send_message(&mut c, &Message::Query { sql: "SELECT 1".into() }).unwrap();
        match recv_message(&mut s).unwrap() {
            Recv::Msg(Message::Query { sql }) => assert_eq!(sql, "SELECT 1"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn clean_close_vs_timeout() {
        let (c, mut s) = pair();
        s.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        assert!(matches!(recv_message(&mut s).unwrap(), Recv::TimedOut));
        drop(c);
        assert!(matches!(recv_message(&mut s).unwrap(), Recv::Closed));
    }

    #[test]
    fn eof_mid_message_is_an_error() {
        let (mut c, mut s) = pair();
        // A length prefix promising 100 bytes, then a hangup.
        c.write_all(&100u32.to_le_bytes()).unwrap();
        c.write_all(&[0u8; 10]).unwrap();
        drop(c);
        let err = recv_message(&mut s).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let (mut c, mut s) = pair();
        c.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let err = recv_message(&mut s).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}
