//! The lardb command-line interface: embedded SQL shell, query server,
//! and network client.
//!
//! ```text
//! # embedded shell (the original mode)
//! cargo run --release -p lardb-server --bin lardb-cli [-- --workers 8]
//!
//! # serve a database over TCP
//! cargo run --release -p lardb-server --bin lardb-cli -- serve --port 5433
//!
//! # connect a shell to a running server
//! cargo run --release -p lardb-server --bin lardb-cli -- \
//!     --connect 127.0.0.1:5433 --tenant acme
//! ```
//!
//! Reads statements terminated by `;` (multi-line input supported).
//! Meta-commands: `\q` quit, `\d` list tables, `\timing` toggle timing,
//! `\explain <select>` show plans, `\metrics` dump the process metrics
//! registry, `\profile` print the last query's profile as JSON,
//! `\trace [path]` dump the last traced query's Chrome trace JSON, `\help`.
//! `-c "<sql>"` runs one statement and exits (local or remote).

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use lardb::{
    Database, DatabaseConfig, DispatchMode, FaultKind, FaultPlan, Response,
    SchedulerMode, TransportMode,
};
use lardb_server::{Client, QueryOutput, Server, ServerConfig, ServerError};

#[derive(Default)]
struct FaultArgs {
    kind: Option<FaultKind>,
    seed: u64,
    rate_ppm: Option<u32>,
    after: Option<u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
    } else {
        shell_main(&args);
    }
}

// ---------------------------------------------------------------- serve

fn serve_main(args: &[String]) {
    let mut config = DatabaseConfig::default();
    let mut faults = FaultArgs { seed: 42, ..FaultArgs::default() };
    let mut server_cfg = ServerConfig::default();
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 5433;
    let mut serve_seconds: Option<u64> = None;

    let mut argv = args.iter().cloned();
    while let Some(flag) = argv.next() {
        if parse_engine_flag(&flag, &mut argv, &mut config, &mut faults) {
            continue;
        }
        match flag.as_str() {
            "--host" => host = argv.next().unwrap_or_else(|| usage()),
            "--port" => port = next_parsed(&mut argv),
            "--max-sessions" => server_cfg.max_sessions = next_parsed(&mut argv),
            "--max-concurrent" => server_cfg.max_concurrent = next_parsed(&mut argv),
            "--queue-depth" => server_cfg.queue_depth = next_parsed(&mut argv),
            "--queue-wait-ms" => server_cfg.queue_wait_ms = next_parsed(&mut argv),
            "--tenant-mem-mb" => server_cfg.tenant_mem_mb = Some(next_parsed(&mut argv)),
            "--tenant-slots" => server_cfg.tenant_slots = next_parsed(&mut argv),
            "--admission-floor-bytes" => {
                server_cfg.admission_floor_bytes = next_parsed(&mut argv)
            }
            "--auth" => server_cfg.auth_token = Some(argv.next().unwrap_or_else(|| usage())),
            "--serve-seconds" => serve_seconds = Some(next_parsed(&mut argv)),
            _ => usage(),
        }
    }
    arm_faults(&mut config, &faults);
    server_cfg.addr = format!("{host}:{port}");

    let db = Database::with_config(config);
    let server = match Server::start(db, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[lardb] cannot bind {host}:{port}: {e}");
            std::process::exit(1);
        }
    };
    println!("lardb serving on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Run until "q" on stdin or --serve-seconds elapses (whichever first;
    // EOF on stdin leaves only the deadline, or forever without one).
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { return };
            if matches!(line.trim(), "q" | "quit" | "\\q") {
                let _ = tx.send(());
                return;
            }
        }
    });
    let deadline = serve_seconds.map(|s| Instant::now() + Duration::from_secs(s));
    loop {
        if rx.try_recv().is_ok() {
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();
    println!("lardb server stopped");
}

// ------------------------------------------------- shell (local/remote)

fn shell_main(args: &[String]) {
    let mut config = DatabaseConfig::default();
    let mut faults = FaultArgs { seed: 42, ..FaultArgs::default() };
    let mut connect: Option<String> = None;
    let mut tenant = String::new();
    let mut auth = String::new();
    let mut one_shot: Option<String> = None;

    let mut argv = args.iter().cloned();
    while let Some(flag) = argv.next() {
        if parse_engine_flag(&flag, &mut argv, &mut config, &mut faults) {
            continue;
        }
        match flag.as_str() {
            "--connect" => connect = Some(argv.next().unwrap_or_else(|| usage())),
            "--tenant" => tenant = argv.next().unwrap_or_else(|| usage()),
            "--auth" => auth = argv.next().unwrap_or_else(|| usage()),
            "-c" => one_shot = Some(argv.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    arm_faults(&mut config, &faults);

    match connect {
        Some(addr) => remote_shell(&addr, &tenant, &auth, one_shot),
        None => local_shell(config, one_shot),
    }
}

fn remote_shell(addr: &str, tenant: &str, auth: &str, one_shot: Option<String>) {
    let mut client = match Client::connect(addr, tenant, auth) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("[lardb] cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(sql) = one_shot {
        let failed = run_remote_statement(&mut client, &sql, false);
        let _ = client.close();
        std::process::exit(if failed { 1 } else { 0 });
    }

    let mut timing = true;
    println!("lardb — connected to {addr} (session {})", client.session_id());
    println!("end statements with ';', \\q to quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    prompt(true);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            buffer.clear();
            match trimmed.split_once(' ').map_or(trimmed, |(c, _)| c) {
                "\\q" | "\\quit" => break,
                "\\timing" => {
                    timing = !timing;
                    println!("timing {}", if timing { "on" } else { "off" });
                }
                other => println!(
                    "unknown meta-command {other} (remote shell: \\q, \\timing; \
                     SHOW SESSIONS / SHOW METRICS / KILL are SQL)"
                ),
            }
            prompt(true);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        while let Some(pos) = buffer.find(';') {
            let stmt: String = buffer.drain(..=pos).collect();
            let stmt = stmt.trim_end_matches(';').trim();
            if stmt.is_empty() {
                continue;
            }
            run_remote_statement(&mut client, stmt, timing);
        }
        if buffer.trim().is_empty() {
            buffer.clear();
        }
        prompt(buffer.is_empty());
    }
    let _ = client.close();
}

/// Returns `true` when the statement failed.
fn run_remote_statement(client: &mut Client, sql: &str, timing: bool) -> bool {
    let t0 = Instant::now();
    let failed = match client.query(sql) {
        Ok(out) => {
            print!("{}", out.display());
            if let QueryOutput::Rows { rows, .. } = &out {
                println!("({} rows)", rows.len());
            }
            false
        }
        Err(ServerError::Saturated { reason }) => {
            println!("rejected (server saturated): {reason}");
            true
        }
        Err(e) => {
            println!("error: {e}");
            true
        }
    };
    if timing {
        println!("time: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    }
    failed
}

fn local_shell(config: DatabaseConfig, one_shot: Option<String>) {
    let workers = config.workers;
    let db = Database::with_config(config);
    if let Some(sql) = one_shot {
        let failed = run_statement(&db, &sql, false);
        std::process::exit(if failed { 1 } else { 0 });
    }
    let mut timing = true;
    let stdin = std::io::stdin();
    let mut buffer = String::new();

    println!("lardb — scalable linear algebra on a relational database");
    println!("{workers} simulated workers; end statements with ';', \\help for help");
    prompt(buffer.is_empty());

    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();

        // Meta-commands only at the start of a fresh statement.
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            buffer.clear();
            let (cmd, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
            match cmd {
                "\\q" | "\\quit" => break,
                "\\d" => {
                    for t in db.catalog().table_names() {
                        let stats = db.catalog().table_stats(&t).unwrap_or_default();
                        let schema = db.catalog().table_schema(&t).unwrap();
                        println!("  {t} {schema}  [{} rows]", stats.num_rows);
                    }
                }
                "\\timing" => {
                    timing = !timing;
                    println!("timing {}", if timing { "on" } else { "off" });
                }
                "\\explain" => match db.explain(rest) {
                    Ok(plan) => println!("{plan}"),
                    Err(e) => println!("error: {e}"),
                },
                "\\metrics" => match db.execute("SHOW METRICS") {
                    Ok(Response::Rows(q)) => print!("{}", q.display_table()),
                    Ok(_) => {}
                    Err(e) => println!("error: {e}"),
                },
                "\\profile" => match db.last_profile() {
                    Some(p) => println!("{}", p.to_json()),
                    None => println!("no query has run yet"),
                },
                "\\trace" => match lardb_obs::recorder().last() {
                    Some(done) => {
                        let json = done.to_chrome_json();
                        if rest.is_empty() {
                            println!("{json}");
                        } else {
                            match std::fs::write(rest, &json) {
                                Ok(()) => println!(
                                    "trace {} written to {rest} ({} bytes)",
                                    done.id,
                                    json.len()
                                ),
                                Err(e) => println!("error: cannot write {rest}: {e}"),
                            }
                        }
                    }
                    None => println!(
                        "no traced query has completed yet \
                         (tracing samples 1-in-N; see --trace-sample)"
                    ),
                },
                "\\help" => {
                    println!("  \\q          quit");
                    println!("  \\d          list tables");
                    println!("  \\timing     toggle per-statement timing");
                    println!("  \\explain Q  show optimized + physical plan for a SELECT");
                    println!("  \\metrics    dump the process-wide metrics registry");
                    println!("  \\profile    print the last query's profile as JSON");
                    println!("  \\trace [F]  dump the last trace as Chrome JSON (to F if given)");
                }
                other => println!("unknown meta-command {other}; try \\help"),
            }
            prompt(true);
            continue;
        }

        buffer.push_str(&line);
        buffer.push('\n');
        // Execute every complete `;`-terminated statement in the buffer.
        while let Some(pos) = buffer.find(';') {
            let stmt: String = buffer.drain(..=pos).collect();
            let stmt = stmt.trim_end_matches(';').trim();
            if stmt.is_empty() {
                continue;
            }
            run_statement(&db, stmt, timing);
        }
        if buffer.trim().is_empty() {
            buffer.clear();
        }
        prompt(buffer.is_empty());
    }
}

/// Returns `true` when the statement failed.
fn run_statement(db: &Database, sql: &str, timing: bool) -> bool {
    let t0 = std::time::Instant::now();
    let failed = match db.execute(sql) {
        Ok(Response::Rows(q)) => {
            print!("{}", q.display_table());
            println!("({} rows)", q.rows.len());
            false
        }
        Ok(Response::Inserted(n)) => {
            println!("inserted {n} rows");
            false
        }
        Ok(Response::Done) => {
            println!("ok");
            false
        }
        Ok(Response::Explained(plan)) => {
            println!("{plan}");
            false
        }
        Err(e) => {
            println!("error: {e}");
            true
        }
    };
    if timing {
        println!("time: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    }
    failed
}

// -------------------------------------------------------------- helpers

/// Parses one shared engine flag; returns `false` when `flag` is not an
/// engine flag (so mode-specific parsing can try it).
fn parse_engine_flag(
    flag: &str,
    argv: &mut impl Iterator<Item = String>,
    config: &mut DatabaseConfig,
    faults: &mut FaultArgs,
) -> bool {
    match flag {
        "--workers" => config.workers = next_parsed(argv),
        "--transport" => {
            config.transport = argv
                .next()
                .and_then(|v| TransportMode::parse(&v))
                .unwrap_or_else(|| usage());
        }
        "--slow-ms" => config.slow_query_ms = Some(next_parsed(argv)),
        "--pool-workers" => config.pool_workers = Some(next_parsed(argv)),
        "--morsel-rows" => config.morsel_rows = next_parsed(argv),
        "--scheduler" => {
            config.scheduler = argv
                .next()
                .and_then(|v| v.parse::<SchedulerMode>().ok())
                .unwrap_or_else(|| usage());
        }
        "--expr-engine" => {
            config.expr_engine = argv
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
        }
        "--batch-rows" => config.batch_rows = std::cmp::max(1, next_parsed(argv)),
        "--plan-cache-entries" => config.plan_cache_entries = next_parsed(argv),
        "--gemm-par-flops" => config.gemm_parallel_flops = Some(next_parsed(argv)),
        "--sparse-threshold" => config.sparse_threshold = Some(next_parsed(argv)),
        "--sparse-dispatch" => {
            config.sparse_dispatch = Some(
                argv.next()
                    .and_then(|v| DispatchMode::parse(&v))
                    .unwrap_or_else(|| usage()),
            );
        }
        "--net-timeout-ms" => config.net.timeout_ms = next_parsed(argv),
        "--max-frame-bytes" => config.net.max_frame_bytes = next_parsed(argv),
        "--fault-kind" => {
            faults.kind = Some(
                argv.next().and_then(|v| FaultKind::parse(&v)).unwrap_or_else(|| usage()),
            );
        }
        "--fault-seed" => faults.seed = next_parsed(argv),
        "--fault-rate-ppm" => faults.rate_ppm = Some(next_parsed(argv)),
        "--fault-after" => faults.after = Some(next_parsed(argv)),
        "--mem-budget-mb" => config.mem = Some(next_parsed(argv)),
        "--spill-dir" => {
            config.spill_dir =
                Some(argv.next().map(std::path::PathBuf::from).unwrap_or_else(|| usage()));
        }
        "--trace-dir" => {
            config.trace_dir =
                Some(argv.next().map(std::path::PathBuf::from).unwrap_or_else(|| usage()));
        }
        "--trace-sample" => config.trace_sample = Some(next_parsed(argv)),
        "--trace-capacity" => config.trace_capacity = Some(next_parsed(argv)),
        _ => return false,
    }
    true
}

fn arm_faults(config: &mut DatabaseConfig, faults: &FaultArgs) {
    if let Some(kind) = faults.kind {
        let mut plan = FaultPlan::new(kind, faults.seed);
        if let Some(ppm) = faults.rate_ppm {
            plan.rate_ppm = ppm;
        }
        if let Some(after) = faults.after {
            plan.kill_after = after;
        }
        config.net.faults = Some(plan);
        eprintln!(
            "[lardb] fault injection armed: {kind} (seed {}, rate {} ppm, kill-after {})",
            faults.seed,
            config.net.faults.as_ref().map(|p| p.rate_ppm).unwrap_or_default(),
            config.net.faults.as_ref().map(|p| p.kill_after).unwrap_or_default(),
        );
    } else if faults.rate_ppm.is_some() || faults.after.is_some() {
        eprintln!("[lardb] --fault-rate-ppm/--fault-after require --fault-kind");
        usage();
    }
}

fn next_parsed<T: std::str::FromStr>(argv: &mut impl Iterator<Item = String>) -> T {
    argv.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

fn prompt(fresh: bool) {
    print!("{}", if fresh { "lardb> " } else { "   ... " });
    let _ = std::io::stdout().flush();
}

fn usage() -> ! {
    eprintln!(
        "usage: lardb-cli [engine flags] [-c SQL]                      embedded shell\n\
                lardb-cli --connect HOST:PORT [--tenant T] [--auth A] [-c SQL]\n\
                lardb-cli serve [engine flags] [server flags]\n\
         engine flags: [--workers N] [--transport pointer|serialized|tcp] \
         [--slow-ms MS] [--pool-workers N] [--morsel-rows N] \
         [--scheduler pool|spawn] [--expr-engine compiled|interpret] \
         [--batch-rows N] [--plan-cache-entries N (0 = off)] [--gemm-par-flops N] \
         [--sparse-threshold F (0..1)] [--sparse-dispatch dense|sparse|adaptive] \
         [--net-timeout-ms MS] [--max-frame-bytes N] \
         [--fault-kind drop|truncate|corrupt|delay|kill] [--fault-seed N] \
         [--fault-rate-ppm N] [--fault-after N] \
         [--mem-budget-mb N (0 = unbounded)] [--spill-dir PATH] \
         [--trace-dir PATH] [--trace-sample N (0 = off, N = 1-in-N)] \
         [--trace-capacity N]\n\
         server flags: [--host H] [--port N] [--max-sessions N] \
         [--max-concurrent N] [--queue-depth N] [--queue-wait-ms MS] \
         [--tenant-mem-mb N] [--tenant-slots N] [--admission-floor-bytes N] \
         [--auth TOKEN] [--serve-seconds N]"
    );
    std::process::exit(2);
}
