//! Admission control: bounded concurrency, per-tenant slots, FIFO
//! queueing, and typed saturation.
//!
//! Every query acquires an [`AdmissionPermit`] before it executes. The
//! controller grants permits while the global concurrency cap and the
//! tenant's slot cap have room; otherwise the query waits in a FIFO
//! ticket queue. The queue is bounded (`queue_depth`) and waits are
//! bounded (`queue_wait_ms`) — past either bound the query is rejected
//! with [`ServerError::Saturated`], never silently dropped and never
//! allowed to pile unbounded load onto the executor.
//!
//! When the session runs under a tenant memory quota, admission also
//! reserves a small *floor* from the tenant's sub-governor and holds it
//! for the query's lifetime. A tenant whose quota is exhausted therefore
//! fails admission (typed backpressure) instead of getting half-way into
//! execution and dying on an allocation — quota exhaustion degrades to
//! `Saturated`, not to an engine error or an OOM.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lardb_buf::{MemoryGovernor, MemoryReservation};

use crate::ServerError;

/// How often a queued query re-checks slots/quota while waiting.
const QUEUE_POLL: Duration = Duration::from_millis(20);

/// Admission knobs (a subset of `ServerConfig`, copied in).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to execute concurrently across all sessions.
    pub max_concurrent: usize,
    /// Queries allowed to wait; one more is rejected immediately.
    pub queue_depth: usize,
    /// Longest a query may wait in the queue before rejection.
    pub queue_wait_ms: u64,
    /// Concurrent queries allowed per tenant (`0` = no per-tenant cap).
    pub tenant_slots: usize,
    /// Bytes reserved from the tenant's governor for the query's
    /// lifetime (`0` = no floor reservation).
    pub admission_floor_bytes: u64,
}

#[derive(Debug, Default)]
struct AdmState {
    active: usize,
    tenant_active: HashMap<String, usize>,
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// FIFO admission controller shared by every session of one server.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl AdmissionController {
    /// A controller with the given knobs.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, AdmState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn slots_free(&self, st: &AdmState, tenant: &str) -> bool {
        if st.active >= self.cfg.max_concurrent {
            return false;
        }
        if self.cfg.tenant_slots == 0 {
            return true;
        }
        st.tenant_active.get(tenant).copied().unwrap_or(0) < self.cfg.tenant_slots
    }

    /// Acquire a permit for one query of `tenant`, optionally reserving an
    /// admission floor from `governor`. Blocks (FIFO) up to
    /// `queue_wait_ms`; returns [`ServerError::Saturated`] when the queue
    /// is full, the wait times out, or the tenant's quota never admits the
    /// floor.
    pub fn admit(
        self: &Arc<Self>,
        tenant: &str,
        governor: Option<&Arc<MemoryGovernor>>,
    ) -> Result<AdmissionPermit, ServerError> {
        let metrics = lardb_obs::global();
        let deadline = Instant::now() + Duration::from_millis(self.cfg.queue_wait_ms);
        let mut st = self.lock();
        if st.queue.len() >= self.cfg.queue_depth {
            metrics.counter("server.queries_rejected").inc();
            return Err(ServerError::Saturated {
                reason: format!(
                    "admission queue full ({} queries waiting, depth {})",
                    st.queue.len(),
                    self.cfg.queue_depth
                ),
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        metrics.gauge("server.queue_depth").set(st.queue.len() as f64);

        let mut counted_queued = false;
        let mut quota_blocked = false;
        loop {
            if st.queue.front() == Some(&ticket) && self.slots_free(&st, tenant) {
                // Our turn: take the floor reservation (lock-free atomics,
                // cheap to attempt under the admission lock).
                let floor = match governor {
                    Some(gov) if self.cfg.admission_floor_bytes > 0 => {
                        match gov.try_reserve(self.cfg.admission_floor_bytes) {
                            Some(res) => Some(res),
                            None => {
                                // Tenant quota exhausted: keep our place in
                                // line and retry until the deadline.
                                quota_blocked = true;
                                if Instant::now() >= deadline {
                                    return self.reject(st, ticket, tenant, quota_blocked);
                                }
                                st = self.wait_tick(st, deadline);
                                continue;
                            }
                        }
                    }
                    _ => None,
                };
                st.queue.pop_front();
                st.active += 1;
                *st.tenant_active.entry(tenant.to_string()).or_insert(0) += 1;
                metrics.gauge("server.queue_depth").set(st.queue.len() as f64);
                metrics.counter("server.queries_admitted").inc();
                self.cv.notify_all();
                return Ok(AdmissionPermit {
                    ctl: Arc::clone(self),
                    tenant: tenant.to_string(),
                    _floor: floor,
                });
            }
            if Instant::now() >= deadline {
                return self.reject(st, ticket, tenant, quota_blocked);
            }
            if !counted_queued {
                metrics.counter("server.queries_queued").inc();
                counted_queued = true;
            }
            st = self.wait_tick(st, deadline);
        }
    }

    /// One bounded condvar wait: wakes on a notification or the poll tick,
    /// whichever comes first (the tick re-checks the tenant governor,
    /// which has no notification channel).
    fn wait_tick<'a>(
        &self,
        st: MutexGuard<'a, AdmState>,
        deadline: Instant,
    ) -> MutexGuard<'a, AdmState> {
        let wait = QUEUE_POLL
            .min(deadline.saturating_duration_since(Instant::now()))
            // Yield the lock briefly even when the deadline has passed,
            // instead of spinning.
            .max(Duration::from_millis(1));
        self.cv
            .wait_timeout(st, wait)
            .unwrap_or_else(|e| e.into_inner())
            .0
    }

    fn reject(
        &self,
        mut st: MutexGuard<'_, AdmState>,
        ticket: u64,
        tenant: &str,
        quota_blocked: bool,
    ) -> Result<AdmissionPermit, ServerError> {
        st.queue.retain(|&t| t != ticket);
        let metrics = lardb_obs::global();
        metrics.gauge("server.queue_depth").set(st.queue.len() as f64);
        metrics.counter("server.queries_rejected").inc();
        self.cv.notify_all();
        let reason = if quota_blocked {
            format!(
                "tenant '{tenant}' memory quota exhausted (waited {} ms for {} floor bytes)",
                self.cfg.queue_wait_ms, self.cfg.admission_floor_bytes
            )
        } else {
            format!(
                "server saturated ({} queries running, waited {} ms)",
                st.active, self.cfg.queue_wait_ms
            )
        };
        Err(ServerError::Saturated { reason })
    }

    /// Currently executing queries (for tests / introspection).
    pub fn active(&self) -> usize {
        self.lock().active
    }

    /// Currently queued queries.
    pub fn queued(&self) -> usize {
        self.lock().queue.len()
    }
}

/// RAII admission slot: releasing it frees the global and tenant slots
/// (and the tenant floor reservation) and wakes queued queries.
#[derive(Debug)]
pub struct AdmissionPermit {
    ctl: Arc<AdmissionController>,
    tenant: String,
    _floor: Option<MemoryReservation>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.ctl.lock();
        st.active = st.active.saturating_sub(1);
        if let Some(c) = st.tenant_active.get_mut(&self.tenant) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                st.tenant_active.remove(&self.tenant);
            }
        }
        self.ctl.cv.notify_all();
    }
}
