//! Property tests on the execution layer's central invariant: two-phase
//! (partial → merge → final) aggregation must agree with single-phase
//! aggregation for every aggregate function, for any partitioning of the
//! input — this is what makes distribution invisible in query answers.

use lardb_exec::agg::Accumulator;
use lardb_la::{LabeledScalar, Vector};
use lardb_planner::AggFunc;
use lardb_storage::Value;
use proptest::prelude::*;

/// Applies `values` through `parts`-way two-phase aggregation.
fn two_phase(func: AggFunc, values: &[Value], parts: usize) -> Value {
    let mut partials = Vec::new();
    for chunk in values.chunks(values.len().div_ceil(parts).max(1)) {
        let mut acc = Accumulator::new(func);
        for v in chunk {
            acc.update(v).unwrap();
        }
        partials.push(acc.state());
    }
    let mut fin = Accumulator::new(func);
    for s in partials {
        fin.merge_state(&s).unwrap();
    }
    fin.finish()
}

fn one_phase(func: AggFunc, values: &[Value]) -> Value {
    let mut acc = Accumulator::new(func);
    for v in values {
        acc.update(v).unwrap();
    }
    acc.finish()
}

fn assert_value_close(a: &Value, b: &Value) {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => {
            assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}")
        }
        (Value::Vector(x), Value::Vector(y)) => assert!(x.approx_eq(y, 1e-9)),
        (Value::Matrix(x), Value::Matrix(y)) => assert!(x.approx_eq(y, 1e-9)),
        (a, b) => assert_eq!(a, b),
    }
}

proptest! {
    #[test]
    fn scalar_aggs_two_phase_equals_one_phase(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..60),
        parts in 1usize..6,
    ) {
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let values: Vec<Value> = xs.iter().map(|&x| Value::Double(x)).collect();
            let a = one_phase(func, &values);
            let b = two_phase(func, &values, parts);
            assert_value_close(&a, &b);
        }
    }

    #[test]
    fn vector_sum_min_max_two_phase(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 5), 1..30),
        parts in 1usize..5,
    ) {
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let values: Vec<Value> = rows
                .iter()
                .map(|r| Value::vector(Vector::from_slice(r)))
                .collect();
            let a = one_phase(func, &values);
            let b = two_phase(func, &values, parts);
            assert_value_close(&a, &b);
        }
    }

    #[test]
    fn vectorize_two_phase(
        pairs in proptest::collection::vec((0i64..30, -5.0f64..5.0), 1..40),
        parts in 1usize..5,
    ) {
        // Unique labels so merge order cannot change which value wins.
        let mut seen = std::collections::HashSet::new();
        let values: Vec<Value> = pairs
            .iter()
            .filter(|(l, _)| seen.insert(*l))
            .map(|&(l, v)| Value::LabeledScalar(LabeledScalar::new(v, l)))
            .collect();
        prop_assume!(!values.is_empty());
        let a = one_phase(AggFunc::Vectorize, &values);
        let b = two_phase(AggFunc::Vectorize, &values, parts);
        assert_value_close(&a, &b);
    }

    #[test]
    fn rowmatrix_two_phase(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3), 1..20),
        parts in 1usize..5,
    ) {
        let values: Vec<Value> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| Value::vector(Vector::from_slice(r).with_label(i as i64)))
            .collect();
        for func in [AggFunc::RowMatrix, AggFunc::ColMatrix] {
            let a = one_phase(func, &values);
            let b = two_phase(func, &values, parts);
            assert_value_close(&a, &b);
        }
    }

    #[test]
    fn nulls_are_skipped_consistently(
        xs in proptest::collection::vec(proptest::option::of(-10.0f64..10.0), 1..40),
        parts in 1usize..4,
    ) {
        let values: Vec<Value> = xs
            .iter()
            .map(|o| o.map(Value::Double).unwrap_or(Value::Null))
            .collect();
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let a = one_phase(func, &values);
            let b = two_phase(func, &values, parts);
            assert_value_close(&a, &b);
        }
    }
}
