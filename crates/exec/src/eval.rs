//! Row-at-a-time expression evaluation.
//!
//! This is the *interpreted* engine (`--expr-engine interpret`) and the
//! semantic reference for the vectorized engine in [`crate::compile`] /
//! [`crate::kernels`]: whatever this module computes, per row, is by
//! definition the right answer. Two allocation patterns matter on the
//! hot path and are deliberately engineered away:
//!
//! * `Expr::Column` / `Expr::Literal` do **not** clone: evaluation is
//!   internally borrow-based (`Ev`) and only materializes an owned
//!   [`Value`] at the root (or when an operator genuinely produces a new
//!   value).
//! * `Expr::Call` argument lists reuse a caller-provided scratch buffer
//!   ([`eval_with`]) instead of allocating a `Vec` per row. Nested calls
//!   share the same buffer stack-style (push args, evaluate, truncate).

use lardb_planner::{CmpOp, Expr};
use lardb_storage::ops;
use lardb_storage::{Row, Value};

use crate::{ExecError, Result};

/// A possibly-borrowed evaluation result: column references and literals
/// borrow from the row / expression tree, computed values are owned.
enum Ev<'a> {
    /// Borrowed from the input row or the expression's literal pool.
    Ref(&'a Value),
    /// Produced by an operator.
    Owned(Value),
}

impl<'a> Ev<'a> {
    #[inline]
    fn get(&self) -> &Value {
        match self {
            Ev::Ref(v) => v,
            Ev::Owned(v) => v,
        }
    }

    #[inline]
    fn into_owned(self) -> Value {
        match self {
            Ev::Ref(v) => v.clone(),
            Ev::Owned(v) => v,
        }
    }
}

/// Borrow-based core: clones only where a value is genuinely produced.
/// `scratch` is a reusable argument buffer for `Expr::Call`; it is always
/// left at the length it had on entry.
fn eval_ev<'a>(expr: &'a Expr, row: &'a Row, scratch: &mut Vec<Value>) -> Result<Ev<'a>> {
    match expr {
        Expr::Column(i) => row.values().get(*i).map(Ev::Ref).ok_or_else(|| {
            ExecError::Runtime(format!(
                "column #{i} out of range for row of arity {}",
                row.arity()
            ))
        }),
        Expr::Literal(v) => Ok(Ev::Ref(v)),
        Expr::Arith { op, lhs, rhs } => {
            let l = eval_ev(lhs, row, scratch)?;
            let r = eval_ev(rhs, row, scratch)?;
            Ok(Ev::Owned(ops::arith(*op, l.get(), r.get())?))
        }
        Expr::Cmp { op, lhs, rhs } => {
            let l = eval_ev(lhs, row, scratch)?;
            let r = eval_ev(rhs, row, scratch)?;
            let (l, r) = (l.get(), r.get());
            if l.is_null() || r.is_null() {
                return Ok(Ev::Owned(Value::Null));
            }
            let ord = ops::compare(l, r).ok_or_else(|| {
                ExecError::Runtime(format!(
                    "cannot compare {} with {}",
                    l.data_type(),
                    r.data_type()
                ))
            })?;
            Ok(Ev::Owned(Value::Boolean(cmp_holds(*op, ord))))
        }
        Expr::And(a, b) => {
            // SQL three-valued logic: FALSE dominates NULL.
            let l = eval_ev(a, row, scratch)?;
            if l.get() == &Value::Boolean(false) {
                return Ok(Ev::Owned(Value::Boolean(false)));
            }
            let r = eval_ev(b, row, scratch)?;
            if r.get() == &Value::Boolean(false) {
                return Ok(Ev::Owned(Value::Boolean(false)));
            }
            if l.get().is_null() || r.get().is_null() {
                return Ok(Ev::Owned(Value::Null));
            }
            Ok(Ev::Owned(Value::Boolean(true)))
        }
        Expr::Or(a, b) => {
            let l = eval_ev(a, row, scratch)?;
            if l.get() == &Value::Boolean(true) {
                return Ok(Ev::Owned(Value::Boolean(true)));
            }
            let r = eval_ev(b, row, scratch)?;
            if r.get() == &Value::Boolean(true) {
                return Ok(Ev::Owned(Value::Boolean(true)));
            }
            if l.get().is_null() || r.get().is_null() {
                return Ok(Ev::Owned(Value::Null));
            }
            Ok(Ev::Owned(Value::Boolean(false)))
        }
        Expr::Not(e) => match eval_ev(e, row, scratch)?.get() {
            Value::Null => Ok(Ev::Owned(Value::Null)),
            Value::Boolean(b) => Ok(Ev::Owned(Value::Boolean(!b))),
            other => Err(ExecError::Runtime(format!(
                "NOT expects BOOLEAN, got {}",
                other.data_type()
            ))),
        },
        Expr::Negate(e) => {
            let v = eval_ev(e, row, scratch)?;
            Ok(Ev::Owned(ops::negate(v.get())?))
        }
        Expr::Call { func, args } => {
            // Stack discipline on the shared scratch buffer: push this
            // call's arguments, evaluate over the pushed window, truncate
            // back. Nested calls nest windows naturally.
            let base = scratch.len();
            for a in args {
                let v = eval_ev(a, row, scratch)?.into_owned();
                scratch.push(v);
            }
            let out = func.evaluate(&scratch[base..]);
            scratch.truncate(base);
            Ok(Ev::Owned(out?))
        }
    }
}

/// Whether a comparison outcome satisfies the operator.
#[inline]
pub(crate) fn cmp_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::NotEq => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::LtEq => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::GtEq => ord != std::cmp::Ordering::Less,
    }
}

/// Evaluates an expression against one input row.
pub fn eval(expr: &Expr, row: &Row) -> Result<Value> {
    let mut scratch = Vec::new();
    eval_with(expr, row, &mut scratch)
}

/// [`eval`] with a reusable `Expr::Call` argument buffer: hot loops pass
/// the same buffer for every row so argument lists stop allocating.
pub fn eval_with(expr: &Expr, row: &Row, scratch: &mut Vec<Value>) -> Result<Value> {
    eval_ev(expr, row, scratch).map(Ev::into_owned)
}

/// Evaluates a predicate; NULL (unknown) filters the row out, per SQL.
pub fn eval_predicate(expr: &Expr, row: &Row) -> Result<bool> {
    let mut scratch = Vec::new();
    eval_predicate_with(expr, row, &mut scratch)
}

/// [`eval_predicate`] with a reusable `Expr::Call` argument buffer.
pub fn eval_predicate_with(expr: &Expr, row: &Row, scratch: &mut Vec<Value>) -> Result<bool> {
    match eval_ev(expr, row, scratch)?.get() {
        Value::Boolean(b) => Ok(*b),
        Value::Null => Ok(false),
        other => Err(ExecError::Runtime(format!(
            "predicate evaluated to {}, expected BOOLEAN",
            other.data_type()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;
    use lardb_planner::Builtin;
    use lardb_storage::ops::ArithOp;

    fn row() -> Row {
        Row::new(vec![
            Value::Integer(7),
            Value::Double(2.5),
            Value::vector(Vector::from_slice(&[1.0, 2.0])),
            Value::Null,
        ])
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(eval(&Expr::col(0), &row()).unwrap(), Value::Integer(7));
        assert_eq!(eval(&Expr::lit(3.0), &row()).unwrap(), Value::Double(3.0));
        assert!(eval(&Expr::col(9), &row()).is_err());
    }

    #[test]
    fn arithmetic_and_broadcast() {
        let e = Expr::arith(ArithOp::Mul, Expr::col(2), Expr::col(1));
        let v = eval(&e, &row()).unwrap();
        assert_eq!(v.as_vector().unwrap().as_slice(), &[2.5, 5.0]);
    }

    #[test]
    fn comparisons() {
        let lt = Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::col(0));
        assert_eq!(eval(&lt, &row()).unwrap(), Value::Boolean(true));
        let ne = Expr::cmp(CmpOp::NotEq, Expr::col(0), Expr::lit(7i64));
        assert_eq!(eval(&ne, &row()).unwrap(), Value::Boolean(false));
        // NULL comparison is NULL, and a NULL predicate filters the row.
        let nl = Expr::eq(Expr::col(3), Expr::lit(1i64));
        assert!(eval(&nl, &row()).unwrap().is_null());
        assert!(!eval_predicate(&nl, &row()).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let t = Expr::cmp(CmpOp::Eq, Expr::lit(1i64), Expr::lit(1i64));
        let f = Expr::cmp(CmpOp::Eq, Expr::lit(1i64), Expr::lit(2i64));
        let n = Expr::eq(Expr::col(3), Expr::lit(1i64));
        // FALSE AND NULL = FALSE
        let e = Expr::And(Box::new(f.clone()), Box::new(n.clone()));
        assert_eq!(eval(&e, &row()).unwrap(), Value::Boolean(false));
        // TRUE AND NULL = NULL
        let e = Expr::And(Box::new(t.clone()), Box::new(n.clone()));
        assert!(eval(&e, &row()).unwrap().is_null());
        // TRUE OR NULL = TRUE
        let e = Expr::Or(Box::new(n.clone()), Box::new(t.clone()));
        assert_eq!(eval(&e, &row()).unwrap(), Value::Boolean(true));
        // FALSE OR NULL = NULL
        let e = Expr::Or(Box::new(f), Box::new(n));
        assert!(eval(&e, &row()).unwrap().is_null());
        // NOT
        let e = Expr::Not(Box::new(t));
        assert_eq!(eval(&e, &row()).unwrap(), Value::Boolean(false));
    }

    #[test]
    fn builtin_calls() {
        let e = Expr::call(Builtin::InnerProduct, vec![Expr::col(2), Expr::col(2)]);
        assert_eq!(eval(&e, &row()).unwrap(), Value::Double(5.0));
    }

    #[test]
    fn nested_calls_share_one_scratch_buffer() {
        // norm(v * 2.0) as an arg to an outer call: the inner call's
        // argument window must not clobber the outer's.
        let inner = Expr::call(
            Builtin::InnerProduct,
            vec![Expr::col(2), Expr::col(2)],
        );
        let outer = Expr::arith(ArithOp::Add, inner.clone(), inner);
        let mut scratch = Vec::new();
        let v = eval_with(&outer, &row(), &mut scratch).unwrap();
        assert_eq!(v, Value::Double(10.0));
        assert!(scratch.is_empty(), "scratch must unwind to entry length");
    }

    #[test]
    fn predicate_type_error() {
        assert!(eval_predicate(&Expr::col(0), &row()).is_err());
    }
}
