//! Row-at-a-time expression evaluation.

use lardb_planner::{CmpOp, Expr};
use lardb_storage::ops;
use lardb_storage::{Row, Value};

use crate::{ExecError, Result};

/// Evaluates an expression against one input row.
pub fn eval(expr: &Expr, row: &Row) -> Result<Value> {
    match expr {
        Expr::Column(i) => {
            row.values().get(*i).cloned().ok_or_else(|| {
                ExecError::Runtime(format!(
                    "column #{i} out of range for row of arity {}",
                    row.arity()
                ))
            })
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Arith { op, lhs, rhs } => {
            let l = eval(lhs, row)?;
            let r = eval(rhs, row)?;
            Ok(ops::arith(*op, &l, &r)?)
        }
        Expr::Cmp { op, lhs, rhs } => {
            let l = eval(lhs, row)?;
            let r = eval(rhs, row)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = ops::compare(&l, &r).ok_or_else(|| {
                ExecError::Runtime(format!(
                    "cannot compare {} with {}",
                    l.data_type(),
                    r.data_type()
                ))
            })?;
            let b = match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::NotEq => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::LtEq => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::GtEq => ord != std::cmp::Ordering::Less,
            };
            Ok(Value::Boolean(b))
        }
        Expr::And(a, b) => {
            // SQL three-valued logic: FALSE dominates NULL.
            let l = eval(a, row)?;
            if l == Value::Boolean(false) {
                return Ok(Value::Boolean(false));
            }
            let r = eval(b, row)?;
            if r == Value::Boolean(false) {
                return Ok(Value::Boolean(false));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Boolean(true))
        }
        Expr::Or(a, b) => {
            let l = eval(a, row)?;
            if l == Value::Boolean(true) {
                return Ok(Value::Boolean(true));
            }
            let r = eval(b, row)?;
            if r == Value::Boolean(true) {
                return Ok(Value::Boolean(true));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Boolean(false))
        }
        Expr::Not(e) => match eval(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Boolean(b) => Ok(Value::Boolean(!b)),
            other => Err(ExecError::Runtime(format!(
                "NOT expects BOOLEAN, got {}",
                other.data_type()
            ))),
        },
        Expr::Negate(e) => {
            let v = eval(e, row)?;
            Ok(ops::negate(&v)?)
        }
        Expr::Call { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row)?);
            }
            Ok(func.evaluate(&vals)?)
        }
    }
}

/// Evaluates a predicate; NULL (unknown) filters the row out, per SQL.
pub fn eval_predicate(expr: &Expr, row: &Row) -> Result<bool> {
    match eval(expr, row)? {
        Value::Boolean(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(ExecError::Runtime(format!(
            "predicate evaluated to {}, expected BOOLEAN",
            other.data_type()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;
    use lardb_planner::Builtin;
    use lardb_storage::ops::ArithOp;

    fn row() -> Row {
        Row::new(vec![
            Value::Integer(7),
            Value::Double(2.5),
            Value::vector(Vector::from_slice(&[1.0, 2.0])),
            Value::Null,
        ])
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(eval(&Expr::col(0), &row()).unwrap(), Value::Integer(7));
        assert_eq!(eval(&Expr::lit(3.0), &row()).unwrap(), Value::Double(3.0));
        assert!(eval(&Expr::col(9), &row()).is_err());
    }

    #[test]
    fn arithmetic_and_broadcast() {
        let e = Expr::arith(ArithOp::Mul, Expr::col(2), Expr::col(1));
        let v = eval(&e, &row()).unwrap();
        assert_eq!(v.as_vector().unwrap().as_slice(), &[2.5, 5.0]);
    }

    #[test]
    fn comparisons() {
        let lt = Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::col(0));
        assert_eq!(eval(&lt, &row()).unwrap(), Value::Boolean(true));
        let ne = Expr::cmp(CmpOp::NotEq, Expr::col(0), Expr::lit(7i64));
        assert_eq!(eval(&ne, &row()).unwrap(), Value::Boolean(false));
        // NULL comparison is NULL, and a NULL predicate filters the row.
        let nl = Expr::eq(Expr::col(3), Expr::lit(1i64));
        assert!(eval(&nl, &row()).unwrap().is_null());
        assert!(!eval_predicate(&nl, &row()).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let t = Expr::cmp(CmpOp::Eq, Expr::lit(1i64), Expr::lit(1i64));
        let f = Expr::cmp(CmpOp::Eq, Expr::lit(1i64), Expr::lit(2i64));
        let n = Expr::eq(Expr::col(3), Expr::lit(1i64));
        // FALSE AND NULL = FALSE
        let e = Expr::And(Box::new(f.clone()), Box::new(n.clone()));
        assert_eq!(eval(&e, &row()).unwrap(), Value::Boolean(false));
        // TRUE AND NULL = NULL
        let e = Expr::And(Box::new(t.clone()), Box::new(n.clone()));
        assert!(eval(&e, &row()).unwrap().is_null());
        // TRUE OR NULL = TRUE
        let e = Expr::Or(Box::new(n.clone()), Box::new(t.clone()));
        assert_eq!(eval(&e, &row()).unwrap(), Value::Boolean(true));
        // FALSE OR NULL = NULL
        let e = Expr::Or(Box::new(f), Box::new(n));
        assert!(eval(&e, &row()).unwrap().is_null());
        // NOT
        let e = Expr::Not(Box::new(t));
        assert_eq!(eval(&e, &row()).unwrap(), Value::Boolean(false));
    }

    #[test]
    fn builtin_calls() {
        let e = Expr::call(Builtin::InnerProduct, vec![Expr::col(2), Expr::col(2)]);
        assert_eq!(eval(&e, &row()).unwrap(), Value::Double(5.0));
    }

    #[test]
    fn predicate_type_error() {
        assert!(eval_predicate(&Expr::col(0), &row()).is_err());
    }
}
