//! Aggregate accumulators, including the element-wise LA aggregates of
//! §3.2 and the construction aggregates of §3.3.
//!
//! Every accumulator supports **two-phase aggregation**: a partial phase
//! per worker encodes its state as ordinary [`Value`]s (so it can travel
//! through an exchange like any row), and a final phase decodes and merges
//! those states. This is the combiner structure the paper's Hadoop
//! substrate relies on; without it, the distributed `SUM` of Gram-matrix
//! outer products would serialize on one worker.

use lardb_la::dispatch::{self, Kernel};
use lardb_la::{CooBuilder, LabeledScalar, Matrix, RowMatrixBuilder, Vector, VectorizeBuilder};
use lardb_planner::AggFunc;
use lardb_storage::ops::{self, ArithOp};
use lardb_storage::Value;
use std::sync::Arc;

use crate::{ExecError, Result};

/// Number of state values a partial aggregate emits (fixed per function).
pub fn state_arity(func: AggFunc) -> usize {
    match func {
        AggFunc::Sum | AggFunc::Count | AggFunc::Min | AggFunc::Max => 1,
        AggFunc::Avg => 2,
        AggFunc::Vectorize => 2,
        AggFunc::RowMatrix | AggFunc::ColMatrix => 2,
        AggFunc::MatrixFromEntries => 3,
    }
}

/// A running aggregate.
#[derive(Debug)]
pub enum Accumulator {
    /// `SUM` — element-wise over LA values.
    Sum(Option<Value>),
    /// `COUNT`.
    Count(i64),
    /// `AVG`.
    Avg(Option<Value>, i64),
    /// `MIN` — element-wise over LA values.
    Min(Option<Value>),
    /// `MAX` — element-wise over LA values.
    Max(Option<Value>),
    /// `VECTORIZE`.
    Vectorize(VectorizeBuilder),
    /// `ROWMATRIX`.
    RowMatrix(RowMatrixBuilder),
    /// `COLMATRIX`.
    ColMatrix(RowMatrixBuilder),
    /// `MATRIX_FROM_ENTRIES` — COO assembly of a sparse matrix.
    MatrixFromEntries(CooBuilder),
}

impl Accumulator {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => Accumulator::Sum(None),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Avg => Accumulator::Avg(None, 0),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Vectorize => Accumulator::Vectorize(VectorizeBuilder::new()),
            AggFunc::RowMatrix => Accumulator::RowMatrix(RowMatrixBuilder::new()),
            AggFunc::ColMatrix => Accumulator::ColMatrix(RowMatrixBuilder::new()),
            AggFunc::MatrixFromEntries => Accumulator::MatrixFromEntries(CooBuilder::new()),
        }
    }

    /// Folds one input value. SQL semantics: NULL inputs are skipped
    /// (`COUNT(*)` callers pass a non-null marker per row).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            Accumulator::Count(n) => {
                *n += 1;
            }
            Accumulator::Sum(acc) => add_into(acc, v)?,
            Accumulator::Avg(acc, n) => {
                add_into(acc, v)?;
                *n += 1;
            }
            Accumulator::Min(acc) => minmax_into(acc, v, true)?,
            Accumulator::Max(acc) => minmax_into(acc, v, false)?,
            Accumulator::Vectorize(b) => {
                let ls = v.as_labeled_scalar().ok_or_else(|| {
                    ExecError::Runtime(format!(
                        "VECTORIZE expects LABELED_SCALAR, got {}",
                        v.data_type()
                    ))
                })?;
                b.push(ls)?;
            }
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => {
                let vec = v.as_vector().ok_or_else(|| {
                    ExecError::Runtime(format!(
                        "ROWMATRIX/COLMATRIX expects VECTOR, got {}",
                        v.data_type()
                    ))
                })?;
                b.push((**vec).clone())?;
            }
            Accumulator::MatrixFromEntries(b) => {
                let (r, c, x) = unpack_entry(v)?;
                b.push(r, c, x)?;
            }
        }
        Ok(())
    }

    /// Encodes the partial state as values (see [`state_arity`]).
    pub fn state(&self) -> Vec<Value> {
        match self {
            Accumulator::Sum(acc) | Accumulator::Min(acc) | Accumulator::Max(acc) => {
                vec![acc.clone().unwrap_or(Value::Null)]
            }
            Accumulator::Count(n) => vec![Value::Integer(*n)],
            Accumulator::Avg(acc, n) => {
                vec![acc.clone().unwrap_or(Value::Null), Value::Integer(*n)]
            }
            Accumulator::Vectorize(b) => encode_vectorize(b),
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => encode_labeled_rows(b),
            // (rows, cols, vals) parallel vectors — the partial state ships
            // proportionally to the entries actually seen.
            Accumulator::MatrixFromEntries(b) => {
                let (rows, cols, vals) = b.parts();
                vec![
                    Value::vector(Vector::from_vec(rows)),
                    Value::vector(Vector::from_vec(cols)),
                    Value::vector(Vector::from_vec(vals)),
                ]
            }
        }
    }

    /// Merges a partial state produced by [`Accumulator::state`].
    pub fn merge_state(&mut self, state: &[Value]) -> Result<()> {
        let need = match self {
            Accumulator::Avg(..) => 2,
            Accumulator::Vectorize(_) | Accumulator::RowMatrix(_) | Accumulator::ColMatrix(_) => 2,
            Accumulator::MatrixFromEntries(_) => 3,
            _ => 1,
        };
        if state.len() != need {
            return Err(ExecError::Runtime(format!(
                "aggregate state arity {} does not match expected {need}",
                state.len()
            )));
        }
        match self {
            Accumulator::Sum(acc) => add_into(acc, &state[0])?,
            Accumulator::Count(n) => {
                if let Some(m) = state[0].as_integer() {
                    *n += m;
                }
            }
            Accumulator::Avg(acc, n) => {
                add_into(acc, &state[0])?;
                *n += state[1].as_integer().unwrap_or(0);
            }
            Accumulator::Min(acc) => minmax_into(acc, &state[0], true)?,
            Accumulator::Max(acc) => minmax_into(acc, &state[0], false)?,
            Accumulator::Vectorize(b) => decode_vectorize(b, state)?,
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => {
                decode_labeled_rows(b, state)?
            }
            Accumulator::MatrixFromEntries(b) => {
                let get = |i: usize| {
                    state[i].as_vector().ok_or_else(|| bad_state("MATRIX_FROM_ENTRIES"))
                };
                let (rows, cols, vals) = (get(0)?, get(1)?, get(2)?);
                if rows.len() != cols.len() || rows.len() != vals.len() {
                    return Err(bad_state("MATRIX_FROM_ENTRIES"));
                }
                for i in 0..rows.len() {
                    // Re-validate through the typed push path: a corrupted
                    // partial must not assemble a bogus matrix.
                    let (r, c) = (coord(rows.get(i)?)?, coord(cols.get(i)?)?);
                    b.push(r, c, vals.get(i)?)?;
                }
            }
        }
        Ok(())
    }

    /// Approximate heap bytes held by this accumulator's state — what the
    /// spilling aggregation charges against its memory reservation. Cheap
    /// per variant (the builder aggregates are O(entries), but entry counts
    /// are exactly what the estimate must track).
    pub fn state_bytes(&self) -> usize {
        fn opt(v: &Option<Value>) -> usize {
            v.as_ref().map_or(1, Value::byte_size)
        }
        match self {
            Accumulator::Sum(acc) | Accumulator::Min(acc) | Accumulator::Max(acc) => opt(acc),
            Accumulator::Count(_) => 8,
            Accumulator::Avg(acc, _) => opt(acc) + 8,
            Accumulator::Vectorize(b) => b.entries().len() * 16,
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => {
                b.entries().iter().map(|(_, v)| 8 + v.len() * 8).sum()
            }
            Accumulator::MatrixFromEntries(b) => b.len() * 16,
        }
    }

    /// Produces the final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Sum(acc) | Accumulator::Min(acc) | Accumulator::Max(acc) => {
                acc.unwrap_or(Value::Null)
            }
            Accumulator::Count(n) => Value::Integer(n),
            Accumulator::Avg(acc, n) => match (acc, n) {
                (Some(v), n) if n > 0 => {
                    ops::arith(ArithOp::Div, &v, &Value::Double(n as f64))
                        .unwrap_or(Value::Null)
                }
                _ => Value::Null,
            },
            Accumulator::Vectorize(b) => Value::vector(b.finish()),
            Accumulator::RowMatrix(b) => Value::matrix(b.finish_rows()),
            Accumulator::ColMatrix(b) => Value::matrix(b.finish_cols()),
            Accumulator::MatrixFromEntries(b) => {
                let m = b.build_inferred();
                // The dispatch layer decides the output representation:
                // forced-dense runs get an ordinary MATRIX, adaptive runs
                // keep the CSR form while it is worth it.
                if dispatch::keep_sparse(m.density()) {
                    Value::sparse_matrix(m)
                } else {
                    dispatch::note_kernel(Kernel::Densified);
                    Value::matrix(m.to_dense())
                }
            }
        }
    }
}

/// Unpacks one `sparse_entry(row, col, val)` carrier vector.
fn unpack_entry(v: &Value) -> Result<(i64, i64, f64)> {
    let vec = v.as_vector().filter(|e| e.len() == 3).ok_or_else(|| {
        ExecError::Runtime(format!(
            "MATRIX_FROM_ENTRIES expects (row, col, val), got {}",
            v.data_type()
        ))
    })?;
    let s = vec.as_slice();
    Ok((coord(s[0])?, coord(s[1])?, s[2]))
}

/// A coordinate must be an exact non-negative integer; anything else —
/// fractional values, NaN, negatives — is a typed error rather than a
/// silent truncation.
fn coord(x: f64) -> Result<i64> {
    if x.fract() == 0.0 && (0.0..9e15).contains(&x) {
        Ok(x as i64)
    } else {
        Err(ExecError::Runtime(format!(
            "MATRIX_FROM_ENTRIES: coordinate {x} is not a non-negative integer"
        )))
    }
}

/// `*acc += v` with in-place element-wise addition when the accumulator
/// uniquely owns its payload (the common case), avoiding an allocation per
/// input row — the hot path of the Gram-matrix `SUM`.
fn add_into(acc: &mut Option<Value>, v: &Value) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    match acc {
        None => {
            // Deep-copy LA payloads: the accumulator will mutate them.
            // (Sparse tiles are never mutated in place, so sharing the Arc
            // is safe there.)
            *acc = Some(match v {
                Value::Matrix(m) => Value::Matrix(Arc::new((**m).clone())),
                Value::Vector(x) => Value::Vector(Arc::new((**x).clone())),
                other => other.clone(),
            });
        }
        Some(Value::Matrix(m)) => {
            // Sparse input into a dense accumulator: scatter-add in O(nnz).
            if let Value::SparseMatrix(rhs) = v {
                let lhs = Arc::make_mut(m);
                rhs.add_to_dense(lhs)?;
                return Ok(());
            }
            let rhs = v.as_matrix().ok_or_else(|| mix_err("SUM", v))?;
            let lhs = Arc::make_mut(m);
            lhs.add_in_place(rhs)?;
        }
        Some(Value::Vector(x)) => {
            let rhs = v.as_vector().ok_or_else(|| mix_err("SUM", v))?;
            let lhs = Arc::make_mut(x);
            lhs.add_in_place(rhs)?;
        }
        Some(other) => {
            *other = ops::arith(ArithOp::Add, other, v)?;
        }
    }
    Ok(())
}

fn minmax_into(acc: &mut Option<Value>, v: &Value, is_min: bool) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    // Element-wise MIN/MAX over matrices compares every coordinate, so
    // implicit zeros participate: densify sparse inputs up front.
    let dense_v;
    let v = match v {
        Value::SparseMatrix(m) => {
            dispatch::note_kernel(Kernel::Densified);
            dense_v = Value::matrix(m.to_dense());
            &dense_v
        }
        other => other,
    };
    match acc {
        None => {
            *acc = Some(match v {
                Value::Matrix(m) => Value::Matrix(Arc::new((**m).clone())),
                Value::Vector(x) => Value::Vector(Arc::new((**x).clone())),
                other => other.clone(),
            });
        }
        Some(Value::Matrix(m)) => {
            let rhs = v.as_matrix().ok_or_else(|| mix_err("MIN/MAX", v))?;
            let lhs = Arc::make_mut(m);
            if is_min {
                lhs.min_in_place(rhs)?;
            } else {
                lhs.max_in_place(rhs)?;
            }
        }
        Some(Value::Vector(x)) => {
            let rhs = v.as_vector().ok_or_else(|| mix_err("MIN/MAX", v))?;
            let lhs = Arc::make_mut(x);
            if is_min {
                lhs.min_in_place(rhs)?;
            } else {
                lhs.max_in_place(rhs)?;
            }
        }
        Some(other) => {
            let ord = ops::compare(other, v);
            let replace = match ord {
                Some(std::cmp::Ordering::Greater) => is_min,
                Some(std::cmp::Ordering::Less) => !is_min,
                _ => false,
            };
            if replace {
                *other = v.clone();
            }
        }
    }
    Ok(())
}

fn mix_err(agg: &str, v: &Value) -> ExecError {
    ExecError::Runtime(format!("{agg}: mixed aggregate input types (saw {})", v.data_type()))
}

/// Encodes a `VECTORIZE` partial as `[values VECTOR, labels VECTOR]`,
/// shipping only the *sparse* entries actually seen — positions other
/// workers filled must not be clobbered with zeros at merge time.
fn encode_vectorize(b: &VectorizeBuilder) -> Vec<Value> {
    let entries = b.entries();
    let values = Vector::from_fn(entries.len(), |i| entries[i].1);
    let labels = Vector::from_fn(entries.len(), |i| entries[i].0 as f64);
    vec![Value::vector(values), Value::vector(labels)]
}

fn decode_vectorize(b: &mut VectorizeBuilder, state: &[Value]) -> Result<()> {
    if state[0].is_null() {
        return Ok(());
    }
    let values = state[0].as_vector().ok_or_else(|| bad_state("VECTORIZE"))?;
    let labels = state[1].as_vector().ok_or_else(|| bad_state("VECTORIZE"))?;
    for (&x, &l) in values.as_slice().iter().zip(labels.as_slice()) {
        b.push(LabeledScalar::new(x, l as i64))?;
    }
    Ok(())
}

/// Encodes a `ROWMATRIX`/`COLMATRIX` partial as
/// `[stacked rows MATRIX, labels VECTOR]` — one stacked row per vector
/// actually folded (sparse), labels alongside.
fn encode_labeled_rows(b: &RowMatrixBuilder) -> Vec<Value> {
    let entries = b.entries();
    if entries.is_empty() {
        return vec![Value::Null, Value::Null];
    }
    let parts: Vec<Matrix> = entries.iter().map(|(_, v)| v.to_row_matrix()).collect();
    let refs: Vec<&Matrix> = parts.iter().collect();
    let stacked = Matrix::vstack(&refs).expect("uniform widths enforced on push");
    let labels = Vector::from_fn(entries.len(), |i| entries[i].0 as f64);
    vec![Value::matrix(stacked), Value::vector(labels)]
}

fn decode_labeled_rows(b: &mut RowMatrixBuilder, state: &[Value]) -> Result<()> {
    if state[0].is_null() {
        return Ok(());
    }
    let m: &Matrix = state[0].as_matrix().ok_or_else(|| bad_state("ROWMATRIX"))?;
    let labels = state[1].as_vector().ok_or_else(|| bad_state("ROWMATRIX"))?;
    for i in 0..m.rows() {
        let label = labels.get(i)? as i64;
        b.push(m.row_vector(i)?.with_label(label))?;
    }
    Ok(())
}

fn bad_state(agg: &str) -> ExecError {
    ExecError::Runtime(format!("{agg}: malformed partial aggregate state"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;

    #[test]
    fn sum_scalars_and_vectors() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::Integer(2)).unwrap();
        a.update(&Value::Integer(3)).unwrap();
        a.update(&Value::Null).unwrap();
        assert_eq!(a.finish(), Value::Integer(5));

        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::vector(Vector::from_slice(&[1.0, 2.0]))).unwrap();
        a.update(&Value::vector(Vector::from_slice(&[10.0, 20.0]))).unwrap();
        assert_eq!(a.finish().as_vector().unwrap().as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn sum_does_not_mutate_shared_input() {
        // The first input is Arc-shared with the "table"; the accumulator
        // must deep-copy before mutating.
        let original = Value::vector(Vector::from_slice(&[1.0, 1.0]));
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&original).unwrap();
        a.update(&Value::vector(Vector::from_slice(&[1.0, 1.0]))).unwrap();
        assert_eq!(original.as_vector().unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(a.finish().as_vector().unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn count_and_avg() {
        let mut c = Accumulator::new(AggFunc::Count);
        c.update(&Value::Integer(1)).unwrap();
        c.update(&Value::Integer(1)).unwrap();
        c.update(&Value::Null).unwrap(); // skipped
        assert_eq!(c.finish(), Value::Integer(2));

        let mut a = Accumulator::new(AggFunc::Avg);
        a.update(&Value::Double(1.0)).unwrap();
        a.update(&Value::Double(3.0)).unwrap();
        assert_eq!(a.finish(), Value::Double(2.0));
        assert!(Accumulator::new(AggFunc::Avg).finish().is_null());
    }

    #[test]
    fn avg_of_vectors() {
        let mut a = Accumulator::new(AggFunc::Avg);
        a.update(&Value::vector(Vector::from_slice(&[2.0]))).unwrap();
        a.update(&Value::vector(Vector::from_slice(&[4.0]))).unwrap();
        assert_eq!(a.finish().as_vector().unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn min_max_scalars_and_elementwise() {
        let mut mn = Accumulator::new(AggFunc::Min);
        mn.update(&Value::Double(5.0)).unwrap();
        mn.update(&Value::Double(2.0)).unwrap();
        mn.update(&Value::Double(7.0)).unwrap();
        assert_eq!(mn.finish(), Value::Double(2.0));

        let mut mx = Accumulator::new(AggFunc::Max);
        mx.update(&Value::vector(Vector::from_slice(&[1.0, 9.0]))).unwrap();
        mx.update(&Value::vector(Vector::from_slice(&[5.0, 2.0]))).unwrap();
        assert_eq!(mx.finish().as_vector().unwrap().as_slice(), &[5.0, 9.0]);
    }

    #[test]
    fn vectorize_roundtrip_through_state() {
        let mut p1 = Accumulator::new(AggFunc::Vectorize);
        p1.update(&Value::LabeledScalar(LabeledScalar::new(1.0, 0))).unwrap();
        let mut p2 = Accumulator::new(AggFunc::Vectorize);
        p2.update(&Value::LabeledScalar(LabeledScalar::new(9.0, 3))).unwrap();

        let mut f = Accumulator::new(AggFunc::Vectorize);
        f.merge_state(&p1.state()).unwrap();
        f.merge_state(&p2.state()).unwrap();
        let v = f.finish();
        assert_eq!(v.as_vector().unwrap().as_slice(), &[1.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn rowmatrix_roundtrip_through_state() {
        let mut p1 = Accumulator::new(AggFunc::RowMatrix);
        p1.update(&Value::vector(Vector::from_slice(&[1.0, 2.0]).with_label(0)))
            .unwrap();
        let mut p2 = Accumulator::new(AggFunc::RowMatrix);
        p2.update(&Value::vector(Vector::from_slice(&[3.0, 4.0]).with_label(1)))
            .unwrap();
        let mut f = Accumulator::new(AggFunc::RowMatrix);
        f.merge_state(&p1.state()).unwrap();
        f.merge_state(&p2.state()).unwrap();
        let m = f.finish();
        let m = m.as_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn colmatrix_finish() {
        let mut a = Accumulator::new(AggFunc::ColMatrix);
        a.update(&Value::vector(Vector::from_slice(&[1.0, 2.0]).with_label(1)))
            .unwrap();
        let m = a.finish();
        let m = m.as_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1).unwrap(), 2.0);
    }

    #[test]
    fn sum_state_roundtrip() {
        let mut p = Accumulator::new(AggFunc::Sum);
        p.update(&Value::Double(2.0)).unwrap();
        let mut f = Accumulator::new(AggFunc::Sum);
        f.merge_state(&p.state()).unwrap();
        f.merge_state(&Accumulator::new(AggFunc::Sum).state()).unwrap(); // empty partial
        assert_eq!(f.finish(), Value::Double(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut a = Accumulator::new(AggFunc::Vectorize);
        assert!(a.update(&Value::Double(1.0)).is_err());
        let mut b = Accumulator::new(AggFunc::RowMatrix);
        assert!(b.update(&Value::Double(1.0)).is_err());
        let mut s = Accumulator::new(AggFunc::Sum);
        s.update(&Value::vector(Vector::zeros(2))).unwrap();
        assert!(s.update(&Value::Double(1.0)).is_err());
    }

    #[test]
    fn state_bytes_tracks_growth() {
        let mut s = Accumulator::new(AggFunc::Sum);
        let empty = s.state_bytes();
        s.update(&Value::matrix(Matrix::from_fn(8, 8, |_, _| 1.0))).unwrap();
        assert!(s.state_bytes() >= 8 * 8 * 8, "matrix sum charged its payload");
        assert!(s.state_bytes() > empty);

        let mut v = Accumulator::new(AggFunc::Vectorize);
        let before = v.state_bytes();
        v.update(&Value::LabeledScalar(LabeledScalar::new(1.0, 3))).unwrap();
        assert!(v.state_bytes() > before);
    }

    #[test]
    fn state_arity_consistency() {
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Vectorize,
            AggFunc::RowMatrix,
            AggFunc::ColMatrix,
            AggFunc::MatrixFromEntries,
        ] {
            assert_eq!(Accumulator::new(f).state().len(), state_arity(f));
        }
    }

    fn entry(r: f64, c: f64, v: f64) -> Value {
        Value::vector(Vector::from_slice(&[r, c, v]))
    }

    #[test]
    fn matrix_from_entries_sums_duplicates_and_roundtrips_state() {
        // Default mode is Adaptive; the forced-dense variant lives in the
        // same test as the mode flip to avoid cross-test races on the
        // process-wide dispatch mode.
        let mut p1 = Accumulator::new(AggFunc::MatrixFromEntries);
        p1.update(&entry(0.0, 1.0, 2.0)).unwrap();
        p1.update(&entry(2.0, 0.0, 5.0)).unwrap();
        let mut p2 = Accumulator::new(AggFunc::MatrixFromEntries);
        p2.update(&entry(0.0, 1.0, 3.0)).unwrap(); // duplicate of p1's first

        let mut f = Accumulator::new(AggFunc::MatrixFromEntries);
        f.merge_state(&p1.state()).unwrap();
        f.merge_state(&p2.state()).unwrap();
        let out = f.finish();
        let m = out.as_sparse_matrix().expect("low density stays sparse");
        assert_eq!(m.shape(), (3, 2)); // inferred from max coordinates
        assert_eq!(m.get(0, 1).unwrap(), 5.0); // 2.0 + 3.0
        assert_eq!(m.get(2, 0).unwrap(), 5.0);
        assert_eq!(m.nnz(), 2);

        // Forced-dense mode yields an ordinary MATRIX from the same input.
        lardb_la::dispatch::set_dispatch_mode(lardb_la::DispatchMode::Dense);
        let mut a = Accumulator::new(AggFunc::MatrixFromEntries);
        a.update(&entry(0.0, 0.0, 1.0)).unwrap();
        a.update(&entry(3.0, 3.0, 2.0)).unwrap();
        let out = a.finish();
        lardb_la::dispatch::set_dispatch_mode(lardb_la::DispatchMode::Adaptive);
        let m = out.as_matrix().expect("forced dense yields MATRIX");
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.get(3, 3).unwrap(), 2.0);
    }

    #[test]
    fn matrix_from_entries_rejects_bad_coordinates() {
        let mut a = Accumulator::new(AggFunc::MatrixFromEntries);
        assert!(a.update(&entry(-1.0, 0.0, 1.0)).is_err());
        assert!(a.update(&entry(0.5, 0.0, 1.0)).is_err());
        assert!(a.update(&entry(f64::NAN, 0.0, 1.0)).is_err());
        assert!(a.update(&Value::Double(1.0)).is_err());
        assert!(a.update(&Value::vector(Vector::zeros(2))).is_err());
    }

    #[test]
    fn sum_mixes_sparse_and_dense_tiles() {
        use lardb_la::CooBuilder;
        let mut b = CooBuilder::new();
        b.push(0, 1, 2.0).unwrap();
        let sp = b.build(2, 2).unwrap();
        let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 3.0]]).unwrap();

        // dense first, then sparse (O(nnz) scatter-add path)
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::matrix(dense.clone())).unwrap();
        a.update(&Value::sparse_matrix(sp.clone())).unwrap();
        let m1 = a.finish();

        // sparse first, then dense (generic arith path)
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::sparse_matrix(sp.clone())).unwrap();
        a.update(&Value::matrix(dense.clone())).unwrap();
        let m2 = a.finish();

        let expected = Value::matrix(
            Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).unwrap(),
        );
        assert_eq!(m1, expected);
        assert_eq!(m2, expected);

        // sparse-only SUM stays sparse
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::sparse_matrix(sp.clone())).unwrap();
        a.update(&Value::sparse_matrix(sp)).unwrap();
        assert_eq!(
            a.finish(),
            Value::matrix(Matrix::from_rows(&[&[0.0, 4.0], &[0.0, 0.0]]).unwrap())
        );
    }

    #[test]
    fn minmax_densifies_sparse_input() {
        use lardb_la::CooBuilder;
        let mut b = CooBuilder::new();
        b.push(0, 0, -5.0).unwrap();
        let sp = b.build(1, 2).unwrap();
        let mut mn = Accumulator::new(AggFunc::Min);
        mn.update(&Value::matrix(Matrix::from_rows(&[&[1.0, -2.0]]).unwrap())).unwrap();
        mn.update(&Value::sparse_matrix(sp)).unwrap();
        let m = mn.finish();
        let m = m.as_matrix().unwrap();
        // min(1, -5) = -5; min(-2, implicit 0) = -2
        assert_eq!(m.row(0), &[-5.0, -2.0]);
    }
}
