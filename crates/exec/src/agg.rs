//! Aggregate accumulators, including the element-wise LA aggregates of
//! §3.2 and the construction aggregates of §3.3.
//!
//! Every accumulator supports **two-phase aggregation**: a partial phase
//! per worker encodes its state as ordinary [`Value`]s (so it can travel
//! through an exchange like any row), and a final phase decodes and merges
//! those states. This is the combiner structure the paper's Hadoop
//! substrate relies on; without it, the distributed `SUM` of Gram-matrix
//! outer products would serialize on one worker.

use lardb_la::{LabeledScalar, Matrix, RowMatrixBuilder, Vector, VectorizeBuilder};
use lardb_planner::AggFunc;
use lardb_storage::ops::{self, ArithOp};
use lardb_storage::Value;
use std::sync::Arc;

use crate::{ExecError, Result};

/// Number of state values a partial aggregate emits (fixed per function).
pub fn state_arity(func: AggFunc) -> usize {
    match func {
        AggFunc::Sum | AggFunc::Count | AggFunc::Min | AggFunc::Max => 1,
        AggFunc::Avg => 2,
        AggFunc::Vectorize => 2,
        AggFunc::RowMatrix | AggFunc::ColMatrix => 2,
    }
}

/// A running aggregate.
#[derive(Debug)]
pub enum Accumulator {
    /// `SUM` — element-wise over LA values.
    Sum(Option<Value>),
    /// `COUNT`.
    Count(i64),
    /// `AVG`.
    Avg(Option<Value>, i64),
    /// `MIN` — element-wise over LA values.
    Min(Option<Value>),
    /// `MAX` — element-wise over LA values.
    Max(Option<Value>),
    /// `VECTORIZE`.
    Vectorize(VectorizeBuilder),
    /// `ROWMATRIX`.
    RowMatrix(RowMatrixBuilder),
    /// `COLMATRIX`.
    ColMatrix(RowMatrixBuilder),
}

impl Accumulator {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => Accumulator::Sum(None),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Avg => Accumulator::Avg(None, 0),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Vectorize => Accumulator::Vectorize(VectorizeBuilder::new()),
            AggFunc::RowMatrix => Accumulator::RowMatrix(RowMatrixBuilder::new()),
            AggFunc::ColMatrix => Accumulator::ColMatrix(RowMatrixBuilder::new()),
        }
    }

    /// Folds one input value. SQL semantics: NULL inputs are skipped
    /// (`COUNT(*)` callers pass a non-null marker per row).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            Accumulator::Count(n) => {
                *n += 1;
            }
            Accumulator::Sum(acc) => add_into(acc, v)?,
            Accumulator::Avg(acc, n) => {
                add_into(acc, v)?;
                *n += 1;
            }
            Accumulator::Min(acc) => minmax_into(acc, v, true)?,
            Accumulator::Max(acc) => minmax_into(acc, v, false)?,
            Accumulator::Vectorize(b) => {
                let ls = v.as_labeled_scalar().ok_or_else(|| {
                    ExecError::Runtime(format!(
                        "VECTORIZE expects LABELED_SCALAR, got {}",
                        v.data_type()
                    ))
                })?;
                b.push(ls)?;
            }
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => {
                let vec = v.as_vector().ok_or_else(|| {
                    ExecError::Runtime(format!(
                        "ROWMATRIX/COLMATRIX expects VECTOR, got {}",
                        v.data_type()
                    ))
                })?;
                b.push((**vec).clone())?;
            }
        }
        Ok(())
    }

    /// Encodes the partial state as values (see [`state_arity`]).
    pub fn state(&self) -> Vec<Value> {
        match self {
            Accumulator::Sum(acc) | Accumulator::Min(acc) | Accumulator::Max(acc) => {
                vec![acc.clone().unwrap_or(Value::Null)]
            }
            Accumulator::Count(n) => vec![Value::Integer(*n)],
            Accumulator::Avg(acc, n) => {
                vec![acc.clone().unwrap_or(Value::Null), Value::Integer(*n)]
            }
            Accumulator::Vectorize(b) => encode_vectorize(b),
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => encode_labeled_rows(b),
        }
    }

    /// Merges a partial state produced by [`Accumulator::state`].
    pub fn merge_state(&mut self, state: &[Value]) -> Result<()> {
        let need = match self {
            Accumulator::Avg(..) => 2,
            Accumulator::Vectorize(_) | Accumulator::RowMatrix(_) | Accumulator::ColMatrix(_) => 2,
            _ => 1,
        };
        if state.len() != need {
            return Err(ExecError::Runtime(format!(
                "aggregate state arity {} does not match expected {need}",
                state.len()
            )));
        }
        match self {
            Accumulator::Sum(acc) => add_into(acc, &state[0])?,
            Accumulator::Count(n) => {
                if let Some(m) = state[0].as_integer() {
                    *n += m;
                }
            }
            Accumulator::Avg(acc, n) => {
                add_into(acc, &state[0])?;
                *n += state[1].as_integer().unwrap_or(0);
            }
            Accumulator::Min(acc) => minmax_into(acc, &state[0], true)?,
            Accumulator::Max(acc) => minmax_into(acc, &state[0], false)?,
            Accumulator::Vectorize(b) => decode_vectorize(b, state)?,
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => {
                decode_labeled_rows(b, state)?
            }
        }
        Ok(())
    }

    /// Approximate heap bytes held by this accumulator's state — what the
    /// spilling aggregation charges against its memory reservation. Cheap
    /// per variant (the builder aggregates are O(entries), but entry counts
    /// are exactly what the estimate must track).
    pub fn state_bytes(&self) -> usize {
        fn opt(v: &Option<Value>) -> usize {
            v.as_ref().map_or(1, Value::byte_size)
        }
        match self {
            Accumulator::Sum(acc) | Accumulator::Min(acc) | Accumulator::Max(acc) => opt(acc),
            Accumulator::Count(_) => 8,
            Accumulator::Avg(acc, _) => opt(acc) + 8,
            Accumulator::Vectorize(b) => b.entries().len() * 16,
            Accumulator::RowMatrix(b) | Accumulator::ColMatrix(b) => {
                b.entries().iter().map(|(_, v)| 8 + v.len() * 8).sum()
            }
        }
    }

    /// Produces the final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Sum(acc) | Accumulator::Min(acc) | Accumulator::Max(acc) => {
                acc.unwrap_or(Value::Null)
            }
            Accumulator::Count(n) => Value::Integer(n),
            Accumulator::Avg(acc, n) => match (acc, n) {
                (Some(v), n) if n > 0 => {
                    ops::arith(ArithOp::Div, &v, &Value::Double(n as f64))
                        .unwrap_or(Value::Null)
                }
                _ => Value::Null,
            },
            Accumulator::Vectorize(b) => Value::vector(b.finish()),
            Accumulator::RowMatrix(b) => Value::matrix(b.finish_rows()),
            Accumulator::ColMatrix(b) => Value::matrix(b.finish_cols()),
        }
    }
}

/// `*acc += v` with in-place element-wise addition when the accumulator
/// uniquely owns its payload (the common case), avoiding an allocation per
/// input row — the hot path of the Gram-matrix `SUM`.
fn add_into(acc: &mut Option<Value>, v: &Value) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    match acc {
        None => {
            // Deep-copy LA payloads: the accumulator will mutate them.
            *acc = Some(match v {
                Value::Matrix(m) => Value::Matrix(Arc::new((**m).clone())),
                Value::Vector(x) => Value::Vector(Arc::new((**x).clone())),
                other => other.clone(),
            });
        }
        Some(Value::Matrix(m)) => {
            let rhs = v.as_matrix().ok_or_else(|| mix_err("SUM", v))?;
            let lhs = Arc::make_mut(m);
            lhs.add_in_place(rhs)?;
        }
        Some(Value::Vector(x)) => {
            let rhs = v.as_vector().ok_or_else(|| mix_err("SUM", v))?;
            let lhs = Arc::make_mut(x);
            lhs.add_in_place(rhs)?;
        }
        Some(other) => {
            *other = ops::arith(ArithOp::Add, other, v)?;
        }
    }
    Ok(())
}

fn minmax_into(acc: &mut Option<Value>, v: &Value, is_min: bool) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    match acc {
        None => {
            *acc = Some(match v {
                Value::Matrix(m) => Value::Matrix(Arc::new((**m).clone())),
                Value::Vector(x) => Value::Vector(Arc::new((**x).clone())),
                other => other.clone(),
            });
        }
        Some(Value::Matrix(m)) => {
            let rhs = v.as_matrix().ok_or_else(|| mix_err("MIN/MAX", v))?;
            let lhs = Arc::make_mut(m);
            if is_min {
                lhs.min_in_place(rhs)?;
            } else {
                lhs.max_in_place(rhs)?;
            }
        }
        Some(Value::Vector(x)) => {
            let rhs = v.as_vector().ok_or_else(|| mix_err("MIN/MAX", v))?;
            let lhs = Arc::make_mut(x);
            if is_min {
                lhs.min_in_place(rhs)?;
            } else {
                lhs.max_in_place(rhs)?;
            }
        }
        Some(other) => {
            let ord = ops::compare(other, v);
            let replace = match ord {
                Some(std::cmp::Ordering::Greater) => is_min,
                Some(std::cmp::Ordering::Less) => !is_min,
                _ => false,
            };
            if replace {
                *other = v.clone();
            }
        }
    }
    Ok(())
}

fn mix_err(agg: &str, v: &Value) -> ExecError {
    ExecError::Runtime(format!("{agg}: mixed aggregate input types (saw {})", v.data_type()))
}

/// Encodes a `VECTORIZE` partial as `[values VECTOR, labels VECTOR]`,
/// shipping only the *sparse* entries actually seen — positions other
/// workers filled must not be clobbered with zeros at merge time.
fn encode_vectorize(b: &VectorizeBuilder) -> Vec<Value> {
    let entries = b.entries();
    let values = Vector::from_fn(entries.len(), |i| entries[i].1);
    let labels = Vector::from_fn(entries.len(), |i| entries[i].0 as f64);
    vec![Value::vector(values), Value::vector(labels)]
}

fn decode_vectorize(b: &mut VectorizeBuilder, state: &[Value]) -> Result<()> {
    if state[0].is_null() {
        return Ok(());
    }
    let values = state[0].as_vector().ok_or_else(|| bad_state("VECTORIZE"))?;
    let labels = state[1].as_vector().ok_or_else(|| bad_state("VECTORIZE"))?;
    for (&x, &l) in values.as_slice().iter().zip(labels.as_slice()) {
        b.push(LabeledScalar::new(x, l as i64))?;
    }
    Ok(())
}

/// Encodes a `ROWMATRIX`/`COLMATRIX` partial as
/// `[stacked rows MATRIX, labels VECTOR]` — one stacked row per vector
/// actually folded (sparse), labels alongside.
fn encode_labeled_rows(b: &RowMatrixBuilder) -> Vec<Value> {
    let entries = b.entries();
    if entries.is_empty() {
        return vec![Value::Null, Value::Null];
    }
    let parts: Vec<Matrix> = entries.iter().map(|(_, v)| v.to_row_matrix()).collect();
    let refs: Vec<&Matrix> = parts.iter().collect();
    let stacked = Matrix::vstack(&refs).expect("uniform widths enforced on push");
    let labels = Vector::from_fn(entries.len(), |i| entries[i].0 as f64);
    vec![Value::matrix(stacked), Value::vector(labels)]
}

fn decode_labeled_rows(b: &mut RowMatrixBuilder, state: &[Value]) -> Result<()> {
    if state[0].is_null() {
        return Ok(());
    }
    let m: &Matrix = state[0].as_matrix().ok_or_else(|| bad_state("ROWMATRIX"))?;
    let labels = state[1].as_vector().ok_or_else(|| bad_state("ROWMATRIX"))?;
    for i in 0..m.rows() {
        let label = labels.get(i)? as i64;
        b.push(m.row_vector(i)?.with_label(label))?;
    }
    Ok(())
}

fn bad_state(agg: &str) -> ExecError {
    ExecError::Runtime(format!("{agg}: malformed partial aggregate state"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;

    #[test]
    fn sum_scalars_and_vectors() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::Integer(2)).unwrap();
        a.update(&Value::Integer(3)).unwrap();
        a.update(&Value::Null).unwrap();
        assert_eq!(a.finish(), Value::Integer(5));

        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&Value::vector(Vector::from_slice(&[1.0, 2.0]))).unwrap();
        a.update(&Value::vector(Vector::from_slice(&[10.0, 20.0]))).unwrap();
        assert_eq!(a.finish().as_vector().unwrap().as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn sum_does_not_mutate_shared_input() {
        // The first input is Arc-shared with the "table"; the accumulator
        // must deep-copy before mutating.
        let original = Value::vector(Vector::from_slice(&[1.0, 1.0]));
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(&original).unwrap();
        a.update(&Value::vector(Vector::from_slice(&[1.0, 1.0]))).unwrap();
        assert_eq!(original.as_vector().unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(a.finish().as_vector().unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn count_and_avg() {
        let mut c = Accumulator::new(AggFunc::Count);
        c.update(&Value::Integer(1)).unwrap();
        c.update(&Value::Integer(1)).unwrap();
        c.update(&Value::Null).unwrap(); // skipped
        assert_eq!(c.finish(), Value::Integer(2));

        let mut a = Accumulator::new(AggFunc::Avg);
        a.update(&Value::Double(1.0)).unwrap();
        a.update(&Value::Double(3.0)).unwrap();
        assert_eq!(a.finish(), Value::Double(2.0));
        assert!(Accumulator::new(AggFunc::Avg).finish().is_null());
    }

    #[test]
    fn avg_of_vectors() {
        let mut a = Accumulator::new(AggFunc::Avg);
        a.update(&Value::vector(Vector::from_slice(&[2.0]))).unwrap();
        a.update(&Value::vector(Vector::from_slice(&[4.0]))).unwrap();
        assert_eq!(a.finish().as_vector().unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn min_max_scalars_and_elementwise() {
        let mut mn = Accumulator::new(AggFunc::Min);
        mn.update(&Value::Double(5.0)).unwrap();
        mn.update(&Value::Double(2.0)).unwrap();
        mn.update(&Value::Double(7.0)).unwrap();
        assert_eq!(mn.finish(), Value::Double(2.0));

        let mut mx = Accumulator::new(AggFunc::Max);
        mx.update(&Value::vector(Vector::from_slice(&[1.0, 9.0]))).unwrap();
        mx.update(&Value::vector(Vector::from_slice(&[5.0, 2.0]))).unwrap();
        assert_eq!(mx.finish().as_vector().unwrap().as_slice(), &[5.0, 9.0]);
    }

    #[test]
    fn vectorize_roundtrip_through_state() {
        let mut p1 = Accumulator::new(AggFunc::Vectorize);
        p1.update(&Value::LabeledScalar(LabeledScalar::new(1.0, 0))).unwrap();
        let mut p2 = Accumulator::new(AggFunc::Vectorize);
        p2.update(&Value::LabeledScalar(LabeledScalar::new(9.0, 3))).unwrap();

        let mut f = Accumulator::new(AggFunc::Vectorize);
        f.merge_state(&p1.state()).unwrap();
        f.merge_state(&p2.state()).unwrap();
        let v = f.finish();
        assert_eq!(v.as_vector().unwrap().as_slice(), &[1.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn rowmatrix_roundtrip_through_state() {
        let mut p1 = Accumulator::new(AggFunc::RowMatrix);
        p1.update(&Value::vector(Vector::from_slice(&[1.0, 2.0]).with_label(0)))
            .unwrap();
        let mut p2 = Accumulator::new(AggFunc::RowMatrix);
        p2.update(&Value::vector(Vector::from_slice(&[3.0, 4.0]).with_label(1)))
            .unwrap();
        let mut f = Accumulator::new(AggFunc::RowMatrix);
        f.merge_state(&p1.state()).unwrap();
        f.merge_state(&p2.state()).unwrap();
        let m = f.finish();
        let m = m.as_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn colmatrix_finish() {
        let mut a = Accumulator::new(AggFunc::ColMatrix);
        a.update(&Value::vector(Vector::from_slice(&[1.0, 2.0]).with_label(1)))
            .unwrap();
        let m = a.finish();
        let m = m.as_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1).unwrap(), 2.0);
    }

    #[test]
    fn sum_state_roundtrip() {
        let mut p = Accumulator::new(AggFunc::Sum);
        p.update(&Value::Double(2.0)).unwrap();
        let mut f = Accumulator::new(AggFunc::Sum);
        f.merge_state(&p.state()).unwrap();
        f.merge_state(&Accumulator::new(AggFunc::Sum).state()).unwrap(); // empty partial
        assert_eq!(f.finish(), Value::Double(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut a = Accumulator::new(AggFunc::Vectorize);
        assert!(a.update(&Value::Double(1.0)).is_err());
        let mut b = Accumulator::new(AggFunc::RowMatrix);
        assert!(b.update(&Value::Double(1.0)).is_err());
        let mut s = Accumulator::new(AggFunc::Sum);
        s.update(&Value::vector(Vector::zeros(2))).unwrap();
        assert!(s.update(&Value::Double(1.0)).is_err());
    }

    #[test]
    fn state_bytes_tracks_growth() {
        let mut s = Accumulator::new(AggFunc::Sum);
        let empty = s.state_bytes();
        s.update(&Value::matrix(Matrix::from_fn(8, 8, |_, _| 1.0))).unwrap();
        assert!(s.state_bytes() >= 8 * 8 * 8, "matrix sum charged its payload");
        assert!(s.state_bytes() > empty);

        let mut v = Accumulator::new(AggFunc::Vectorize);
        let before = v.state_bytes();
        v.update(&Value::LabeledScalar(LabeledScalar::new(1.0, 3))).unwrap();
        assert!(v.state_bytes() > before);
    }

    #[test]
    fn state_arity_consistency() {
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Vectorize,
            AggFunc::RowMatrix,
            AggFunc::ColMatrix,
        ] {
            assert_eq!(Accumulator::new(f).state().len(), state_arity(f));
        }
    }
}
