//! Expression → register bytecode compilation for the vectorized engine.
//!
//! [`Program::compile`] flattens an [`Expr`] tree into a linear,
//! register-based instruction sequence (`Instr`) evaluated
//! column-at-a-time over a [`crate::batch::ColumnBatch`]: one virtual
//! register holds one column, every instruction runs one kernel from
//! [`crate::kernels`] across all selected lanes before the next
//! instruction starts. `AND`/`OR` are evaluated *eagerly* (both operand
//! columns computed, then combined lane-wise under SQL three-valued
//! logic) — safe because any lane error routes the whole chunk to the
//! row interpreter, which applies its own short-circuit rules (see
//! [`crate::kernels`] module docs for the fallback argument).
//!
//! Programs borrow literals and builtin handles from the expression tree
//! (`Program<'e>`), so compilation allocates only the instruction list
//! and is done once per operator per query, not per batch.

use std::sync::Arc;

use lardb_planner::{Builtin, CmpOp, Expr};
use lardb_storage::ops::ArithOp;
use lardb_storage::Value;

use crate::batch::Col;
use crate::kernels;
use crate::{ExecError, Result};

/// Which expression engine executes scans, filters, projections and
/// aggregate inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExprEngine {
    /// Row-at-a-time tree-walking interpreter ([`crate::eval`]) — the
    /// ablation baseline (`--expr-engine interpret`).
    Interpret,
    /// Compiled bytecode over column batches with fused morsel kernels
    /// (`--expr-engine compiled`, the default).
    #[default]
    Compiled,
}

impl std::fmt::Display for ExprEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprEngine::Interpret => write!(f, "interpret"),
            ExprEngine::Compiled => write!(f, "compiled"),
        }
    }
}

impl std::str::FromStr for ExprEngine {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "interpret" | "interpreted" => Ok(ExprEngine::Interpret),
            "compiled" | "compile" => Ok(ExprEngine::Compiled),
            other => Err(format!("unknown expression engine '{other}' (interpret|compiled)")),
        }
    }
}

/// One bytecode instruction; `a`/`b`/`args` and `dst` are virtual
/// register indices (single-assignment, allocated post-order).
#[derive(Debug)]
enum Instr<'e> {
    /// Load input column `col` into `dst` (zero-copy: an `Arc` bump).
    Load { col: usize, dst: usize },
    /// Splat a literal across the batch into `dst`.
    Const { v: &'e Value, dst: usize },
    /// `dst ← a ⊕ b` element-wise.
    Arith { op: ArithOp, a: usize, b: usize, dst: usize },
    /// `dst ← a <op> b` lane-wise comparison.
    Cmp { op: CmpOp, a: usize, b: usize, dst: usize },
    /// `dst ← a AND b` under three-valued logic.
    And { a: usize, b: usize, dst: usize },
    /// `dst ← a OR b` under three-valued logic.
    Or { a: usize, b: usize, dst: usize },
    /// `dst ← NOT a`.
    Not { a: usize, dst: usize },
    /// `dst ← -a`.
    Negate { a: usize, dst: usize },
    /// `dst ← func(args…)` gathered per lane.
    Call { func: &'e Builtin, args: Vec<usize>, dst: usize },
}

/// A compiled expression: flat bytecode whose final register is the
/// expression's column result.
#[derive(Debug)]
pub struct Program<'e> {
    instrs: Vec<Instr<'e>>,
    out: usize,
    regs: usize,
    kernels: u64,
}

impl<'e> Program<'e> {
    /// Compiles an expression tree. Compilation is total: type decisions
    /// that need lane values (and the resulting "unsupported" fallbacks)
    /// happen at kernel execution time, per batch.
    pub fn compile(expr: &'e Expr) -> Program<'e> {
        let mut p = Program { instrs: Vec::new(), out: 0, regs: 0, kernels: 0 };
        p.out = p.emit(expr);
        p.kernels = p
            .instrs
            .iter()
            .filter(|i| !matches!(i, Instr::Load { .. } | Instr::Const { .. }))
            .count() as u64;
        p
    }

    fn alloc(&mut self) -> usize {
        let r = self.regs;
        self.regs += 1;
        r
    }

    fn emit(&mut self, expr: &'e Expr) -> usize {
        match expr {
            Expr::Column(i) => {
                let dst = self.alloc();
                self.instrs.push(Instr::Load { col: *i, dst });
                dst
            }
            Expr::Literal(v) => {
                let dst = self.alloc();
                self.instrs.push(Instr::Const { v, dst });
                dst
            }
            Expr::Arith { op, lhs, rhs } => {
                let a = self.emit(lhs);
                let b = self.emit(rhs);
                let dst = self.alloc();
                self.instrs.push(Instr::Arith { op: *op, a, b, dst });
                dst
            }
            Expr::Cmp { op, lhs, rhs } => {
                let a = self.emit(lhs);
                let b = self.emit(rhs);
                let dst = self.alloc();
                self.instrs.push(Instr::Cmp { op: *op, a, b, dst });
                dst
            }
            Expr::And(l, r) => {
                let a = self.emit(l);
                let b = self.emit(r);
                let dst = self.alloc();
                self.instrs.push(Instr::And { a, b, dst });
                dst
            }
            Expr::Or(l, r) => {
                let a = self.emit(l);
                let b = self.emit(r);
                let dst = self.alloc();
                self.instrs.push(Instr::Or { a, b, dst });
                dst
            }
            Expr::Not(e) => {
                let a = self.emit(e);
                let dst = self.alloc();
                self.instrs.push(Instr::Not { a, dst });
                dst
            }
            Expr::Negate(e) => {
                let a = self.emit(e);
                let dst = self.alloc();
                self.instrs.push(Instr::Negate { a, dst });
                dst
            }
            Expr::Call { func, args } => {
                let arg_regs: Vec<usize> = args.iter().map(|a| self.emit(a)).collect();
                let dst = self.alloc();
                self.instrs.push(Instr::Call { func, args: arg_regs, dst });
                dst
            }
        }
    }

    /// Kernel instructions per evaluation (loads and constants excluded) —
    /// feeds the `exec.batch.kernels` counter and EXPLAIN ANALYZE.
    pub fn kernels(&self) -> u64 {
        self.kernels
    }

    /// Evaluates the program over a batch's columns. `sel` restricts
    /// evaluation to the selected lanes (post-filter); unselected lanes of
    /// the result are unspecified and must not be read. Any `Err` means
    /// "replay this chunk through the row interpreter", not a final query
    /// error.
    pub fn eval(
        &self,
        cols: &[Arc<Col>],
        n: usize,
        sel: Option<&[u32]>,
        scratch: &mut Vec<Value>,
    ) -> Result<Arc<Col>> {
        let mut regs: Vec<Option<Arc<Col>>> = vec![None; self.regs];
        for instr in &self.instrs {
            match instr {
                Instr::Load { col, dst } => {
                    let c = cols.get(*col).ok_or_else(|| {
                        ExecError::Runtime(format!(
                            "column #{col} out of range for batch of arity {}",
                            cols.len()
                        ))
                    })?;
                    regs[*dst] = Some(Arc::clone(c));
                }
                Instr::Const { v, dst } => {
                    regs[*dst] = Some(Arc::new(Col::splat(v, n)));
                }
                Instr::Arith { op, a, b, dst } => {
                    let out = kernels::arith(*op, reg(&regs, *a)?, reg(&regs, *b)?, sel, n)?;
                    regs[*dst] = Some(Arc::new(out));
                }
                Instr::Cmp { op, a, b, dst } => {
                    let out = kernels::cmp(*op, reg(&regs, *a)?, reg(&regs, *b)?, sel, n)?;
                    regs[*dst] = Some(Arc::new(out));
                }
                Instr::And { a, b, dst } => {
                    let out = kernels::and(reg(&regs, *a)?, reg(&regs, *b)?, sel, n)?;
                    regs[*dst] = Some(Arc::new(out));
                }
                Instr::Or { a, b, dst } => {
                    let out = kernels::or(reg(&regs, *a)?, reg(&regs, *b)?, sel, n)?;
                    regs[*dst] = Some(Arc::new(out));
                }
                Instr::Not { a, dst } => {
                    let out = kernels::not(reg(&regs, *a)?, sel, n)?;
                    regs[*dst] = Some(Arc::new(out));
                }
                Instr::Negate { a, dst } => {
                    let out = kernels::negate(reg(&regs, *a)?, sel, n)?;
                    regs[*dst] = Some(Arc::new(out));
                }
                Instr::Call { func, args, dst } => {
                    let arg_cols: Vec<&Col> = args
                        .iter()
                        .map(|r| reg(&regs, *r))
                        .collect::<Result<_>>()?;
                    let out = kernels::call(func, &arg_cols, sel, n, scratch)?;
                    regs[*dst] = Some(Arc::new(out));
                }
            }
        }
        regs[self.out]
            .take()
            .ok_or_else(|| ExecError::Runtime("bytecode produced no output register".into()))
    }
}

/// Reads a register that must have been assigned by an earlier
/// instruction (guaranteed by post-order register allocation).
fn reg(regs: &[Option<Arc<Col>>], i: usize) -> Result<&Col> {
    regs.get(i)
        .and_then(|r| r.as_deref())
        .ok_or_else(|| ExecError::Runtime(format!("bytecode register {i} read before write")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ColumnBatch;
    use crate::eval::eval;
    use lardb_storage::Row;

    fn rows() -> Vec<Row> {
        (0..10)
            .map(|i| {
                Row::new(vec![
                    Value::Integer(i),
                    Value::Double(i as f64 * 0.5),
                    if i % 3 == 0 { Value::Null } else { Value::Integer(i * 10) },
                ])
            })
            .collect()
    }

    /// Compiled output must be bit-identical to the interpreter, lane by
    /// lane, whenever the program evaluates successfully.
    fn assert_matches_interpreter(e: &Expr) {
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let prog = Program::compile(e);
        let mut scratch = Vec::new();
        let out = prog.eval(batch.cols(), rows.len(), None, &mut scratch).unwrap();
        for (i, r) in rows.iter().enumerate() {
            let want = eval(e, r).unwrap();
            let got = out.value_at(i);
            match (&got, &want) {
                (Value::Double(g), Value::Double(w)) => assert_eq!(g.to_bits(), w.to_bits()),
                _ => assert_eq!(got, want, "lane {i}"),
            }
        }
    }

    #[test]
    fn arithmetic_and_comparison_match_interpreter() {
        use lardb_storage::ops::ArithOp::*;
        assert_matches_interpreter(&Expr::arith(Add, Expr::col(0), Expr::lit(3i64)));
        assert_matches_interpreter(&Expr::arith(Mul, Expr::col(1), Expr::col(1)));
        assert_matches_interpreter(&Expr::arith(Div, Expr::col(1), Expr::lit(4.0)));
        assert_matches_interpreter(&Expr::arith(Add, Expr::col(0), Expr::col(2)));
        assert_matches_interpreter(&Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit(40i64)));
        assert_matches_interpreter(&Expr::Negate(Box::new(Expr::col(1))));
    }

    #[test]
    fn three_valued_logic_matches_interpreter() {
        let lt = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64));
        let nl = Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::lit(20i64)); // NULL lanes
        assert_matches_interpreter(&Expr::And(Box::new(lt.clone()), Box::new(nl.clone())));
        assert_matches_interpreter(&Expr::Or(Box::new(lt.clone()), Box::new(nl.clone())));
        assert_matches_interpreter(&Expr::Not(Box::new(nl)));
    }

    #[test]
    fn selection_respects_upstream_filter() {
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let pred = Expr::cmp(CmpOp::GtEq, Expr::col(0), Expr::lit(4i64));
        let prog = Program::compile(&pred);
        let mut scratch = Vec::new();
        let c = prog.eval(batch.cols(), rows.len(), None, &mut scratch).unwrap();
        let sel = kernels::selection(&c, None, rows.len()).unwrap();
        assert_eq!(sel, vec![4, 5, 6, 7, 8, 9]);
        // Second predicate evaluated only on surviving lanes.
        let pred2 = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(7i64));
        let prog2 = Program::compile(&pred2);
        let c2 = prog2.eval(batch.cols(), rows.len(), Some(&sel), &mut scratch).unwrap();
        let sel2 = kernels::selection(&c2, Some(&sel), rows.len()).unwrap();
        assert_eq!(sel2, vec![4, 5, 6]);
    }

    #[test]
    fn out_of_range_column_errors() {
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let oor = Expr::col(17);
        let prog = Program::compile(&oor);
        let mut scratch = Vec::new();
        assert!(prog.eval(batch.cols(), rows.len(), None, &mut scratch).is_err());
    }

    #[test]
    fn engine_knob_parses() {
        assert_eq!("interpret".parse::<ExprEngine>().unwrap(), ExprEngine::Interpret);
        assert_eq!("Compiled".parse::<ExprEngine>().unwrap(), ExprEngine::Compiled);
        assert_eq!(ExprEngine::default(), ExprEngine::Compiled);
        assert!("jit".parse::<ExprEngine>().is_err());
        assert_eq!(ExprEngine::Compiled.to_string(), "compiled");
    }

    #[test]
    fn kernel_count_excludes_loads_and_consts() {
        let e = Expr::arith(
            lardb_storage::ops::ArithOp::Add,
            Expr::col(0),
            Expr::lit(1i64),
        );
        assert_eq!(Program::compile(&e).kernels(), 1);
    }
}
