//! The simulated shared-nothing cluster and its morsel scheduler.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lardb_obs::ActiveTrace;
use lardb_pool::WorkerPool;

use crate::{ExecError, Result};

/// A query-wide cancellation flag: the first worker to hit an error flips
/// it, and every sibling checks it at morsel boundaries (and exchange
/// senders before each frame), so a failing query stops shuffling instead
/// of draining work whose result will be discarded.
///
/// Clones share the flag (it is the *query's* token, carried by the
/// query's [`Cluster`] and all its clones).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flips the token. Returns `true` only for the flipping caller —
    /// the winner of the race is the query's *first* failure.
    pub fn cancel(&self) -> bool {
        !self.0.swap(true, Ordering::AcqRel)
    }

    /// True once any worker has cancelled the query.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Re-arms the token (a fresh execution on a reused cluster).
    pub fn reset(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Records a worker failure on the query token: the first (non-cancel)
/// error flips the token and counts one `query.aborts`. Cancellation
/// errors themselves don't re-flip — they are the *effect* of an abort,
/// not a cause.
pub(crate) fn flag_abort(cancel: &CancelToken, e: &ExecError) {
    if matches!(e, ExecError::Cancelled(_)) {
        return;
    }
    if cancel.cancel() {
        lardb_obs::global().counter("query.aborts").inc();
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// How per-partition work is put on threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Morsel-driven: work is split into row-range morsels scheduled on
    /// the persistent work-stealing pool (the default).
    #[default]
    Pool,
    /// One fresh scoped thread per partition per operator — the
    /// pre-morsel behavior, kept as the ablation baseline.
    Spawn,
}

impl std::str::FromStr for SchedulerMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pool" => Ok(SchedulerMode::Pool),
            "spawn" => Ok(SchedulerMode::Spawn),
            other => Err(format!("unknown scheduler '{other}' (pool|spawn)")),
        }
    }
}

/// Default rows per morsel. Small enough that a skewed partition splits
/// into many stealable pieces, large enough that per-morsel scheduling
/// cost is noise; also keeps small inputs on the single-morsel path,
/// whose float accumulation order is identical to a sequential run.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// A cluster of `W` shared-nothing workers.
///
/// Substitution note (see DESIGN.md): the paper ran on 10 EC2 machines with
/// Hadoop; here each "machine" is a *partition* of every table and
/// intermediate, and the per-partition work is scheduled on a persistent
/// work-stealing [`WorkerPool`] as row-range morsels. All dataflow
/// properties the paper measures — per-tuple fixed costs, shuffle volumes,
/// blocking amortization — are preserved, because partition *boundaries*
/// never change; only the mapping of partition work onto OS threads does.
/// The §5 load-imbalance pathology (hashing 100 blocks onto 80 cores) is
/// what the morsel scheduler removes: idle workers steal morsels from a
/// heavy partition instead of waiting for it.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: usize,
    /// `None` ⇒ use the process-wide [`lardb_pool::global`] pool.
    pool: Option<Arc<WorkerPool>>,
    scheduler: SchedulerMode,
    morsel_rows: usize,
    /// Query-wide cancellation token, shared by clones of this cluster.
    cancel: CancelToken,
    /// True when the token was supplied by an external controller (a
    /// server session wiring `KILL` / disconnect into the query). The
    /// executor must not re-arm an external token at query start — a kill
    /// that lands before execution begins must still abort the query.
    external_cancel: bool,
    /// The query's flight-recorder trace, if this query is sampled.
    /// Worker closures run under it (thread-local) and open per-morsel
    /// spans, so leaf code — spill, governor — attributes to the query
    /// even on pool threads it never created.
    trace: Option<Arc<ActiveTrace>>,
}

impl Cluster {
    /// A cluster with `workers` workers (≥ 1), scheduling on the global
    /// pool with default morsel size.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        Cluster {
            workers,
            pool: None,
            scheduler: SchedulerMode::default(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            cancel: CancelToken::new(),
            external_cancel: false,
            trace: None,
        }
    }

    /// Replaces the query's cancellation token with an externally-owned
    /// one (e.g. a server session's), so `KILL` and client-disconnect
    /// detection can abort the query from outside the executor. The
    /// executor will not reset an external token at query start.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self.external_cancel = true;
        self
    }

    /// True when the cancel token is externally owned (see
    /// [`Self::with_cancel_token`]).
    pub fn has_external_cancel(&self) -> bool {
        self.external_cancel
    }

    /// Attaches the query's flight-recorder trace: worker closures run
    /// under it as the thread-local current trace and open per-morsel
    /// spans, and exchange senders ship its id across the wire.
    pub fn with_trace(mut self, trace: Arc<ActiveTrace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The query's trace, if one is attached (see [`Self::with_trace`]).
    pub fn trace(&self) -> Option<&Arc<ActiveTrace>> {
        self.trace.as_ref()
    }

    /// Schedules on a dedicated pool instead of the global one.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Selects the scheduling strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the morsel size in rows (clamped to ≥ 1).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Number of workers (== partitions of every table and intermediate).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Rows per scheduled morsel.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Active scheduling strategy.
    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// The query-wide cancellation token (shared across clones).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The pool this cluster schedules on.
    pub fn pool(&self) -> &WorkerPool {
        match &self.pool {
            Some(p) => p,
            None => lardb_pool::global(),
        }
    }

    /// Runs `f(worker_index, item)` for every item in parallel, preserving
    /// item order in the result. Errors from any worker are propagated
    /// (first one wins), and a worker that panics surfaces as
    /// [`ExecError::Runtime`] instead of tearing down the process — a
    /// query must not crash the database.
    ///
    /// Used for partition-granular stages (hash-table builds, sorts,
    /// frame encoding) where splitting finer buys nothing; row-granular
    /// stages go through [`Self::morsel_map`].
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Sync,
    {
        let f = self.guard(f);
        // Single worker or single item: run inline, no scheduling overhead.
        if items.len() <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        match self.scheduler {
            SchedulerMode::Pool => self.pool_map(items, f),
            SchedulerMode::Spawn => spawn_map(items, f),
        }
    }

    /// Wraps a work closure with the query's cancellation protocol: a
    /// cancelled query skips the work outright (morsel-boundary abort),
    /// and any failure flips the token so siblings stop too. When the
    /// query is traced, the closure runs under the trace (thread-local)
    /// inside a per-morsel span, so the flight recorder sees which pool
    /// thread ran each morsel and leaf code attributes its events.
    fn guard<T, R, F>(&self, f: F) -> impl Fn(usize, T) -> Result<R> + Sync
    where
        F: Fn(usize, T) -> Result<R> + Sync,
    {
        let cancel = self.cancel.clone();
        let trace = self.trace.clone();
        move |i, item| {
            if cancel.is_cancelled() {
                return Err(ExecError::Cancelled(
                    "a sibling worker failed first".into(),
                ));
            }
            let _cur = trace
                .as_ref()
                .map(|t| lardb_obs::trace::push_current(Some(t.clone())));
            let _span = trace
                .as_ref()
                .map(|t| t.span("morsel", "worker").arg("partition", i.to_string()));
            let r = f(i, item);
            if let Err(e) = &r {
                flag_abort(&cancel, e);
            }
            r
        }
    }

    /// Runs `f(partition, morsel_rows)` over every partition of `parts`,
    /// splitting each partition into row-range morsels of
    /// [`Self::morsel_rows`] rows scheduled together on the pool — so
    /// workers drain a skewed partition's tail instead of idling.
    ///
    /// Returns, per partition, the morsel results **in ascending row
    /// order** (deterministic regardless of which worker ran what; the
    /// caller's merge sees the same sequence a sequential run would).
    /// Every partition yields at least one morsel, so empty partitions
    /// still produce one result (preserving per-partition semantics such
    /// as empty-input aggregates).
    ///
    /// Under [`SchedulerMode::Spawn`] each partition is one morsel on its
    /// own scoped thread — the pre-pool behavior, kept for ablation.
    pub fn morsel_map<T, R, F>(&self, parts: Vec<Vec<T>>, f: F) -> Result<Vec<Vec<R>>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, Vec<T>) -> Result<R> + Sync,
    {
        if self.scheduler == SchedulerMode::Spawn {
            return self
                .par_map(parts, |p, rows| f(p, rows).map(|r| vec![r]))
                .map(|v| v.into_iter().collect());
        }
        let f = self.guard(f);
        // Split partitions into (partition, rows) morsels, partition-major.
        let num_parts = parts.len();
        let mut homes: Vec<usize> = Vec::new();
        let mut morsels: Vec<Vec<T>> = Vec::new();
        for (p, rows) in parts.into_iter().enumerate() {
            for chunk in chunk_rows(rows, self.morsel_rows) {
                homes.push(p);
                morsels.push(chunk);
            }
        }
        // One morsel total: run inline (bit-identical to sequential).
        let results: Vec<Result<R>> = if morsels.len() <= 1 {
            homes
                .iter()
                .zip(morsels)
                .map(|(&p, chunk)| f(p, chunk))
                .collect()
        } else {
            let mut slots: Vec<Option<Result<R>>> = Vec::new();
            slots.resize_with(morsels.len(), || None);
            let scoped = self.pool().scope(|s| {
                for ((&p, chunk), slot) in
                    homes.iter().zip(morsels).zip(slots.iter_mut())
                {
                    let f = &f;
                    s.spawn(move || {
                        *slot = Some(f(p, chunk));
                    });
                }
            });
            if let Err(msg) = scoped {
                lardb_obs::global().counter("exec.worker_panics").inc();
                let e = ExecError::Runtime(format!("worker thread panicked: {msg}"));
                flag_abort(&self.cancel, &e);
                return Err(e);
            }
            // An unfilled slot means the pool dropped a morsel without
            // running it — surface as an error instead of panicking the
            // coordinating thread.
            slots
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|| {
                        Err(ExecError::Runtime("pool dropped a morsel unrun".into()))
                    })
                })
                .collect()
        };
        // Reassemble per partition, morsel order preserved.
        let mut out: Vec<Vec<R>> = (0..num_parts).map(|_| Vec::new()).collect();
        for (p, r) in homes.into_iter().zip(results) {
            out[p].push(r?);
        }
        Ok(out)
    }

    /// Partition-granular scheduling on the worker pool: one task per
    /// item, results in item order.
    fn pool_map<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Sync,
    {
        let mut slots: Vec<Option<Result<R>>> = Vec::new();
        slots.resize_with(items.len(), || None);
        let scoped = self.pool().scope(|s| {
            for ((i, item), slot) in items.into_iter().enumerate().zip(slots.iter_mut())
            {
                let f = &f;
                s.spawn(move || {
                    *slot = Some(f(i, item));
                });
            }
        });
        if let Err(msg) = scoped {
            lardb_obs::global().counter("exec.worker_panics").inc();
            let e = ExecError::Runtime(format!("worker thread panicked: {msg}"));
            flag_abort(&self.cancel, &e);
            return Err(e);
        }
        slots
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(ExecError::Runtime("pool dropped a task unrun".into()))
                })
            })
            .collect()
    }
}

/// The pre-pool execution strategy: one scoped OS thread per item.
fn spawn_map<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> Result<R> + Sync,
{
    let results: Vec<Result<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let f = &f;
                scope.spawn(move || f(i, item))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    lardb_obs::global().counter("exec.worker_panics").inc();
                    Err(ExecError::Runtime(format!(
                        "worker thread panicked: {}",
                        panic_message(payload.as_ref())
                    )))
                })
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Splits `rows` into chunks of ≤ `size` rows, moving (never cloning)
/// elements. An empty input yields one empty chunk.
fn chunk_rows<T>(rows: Vec<T>, size: usize) -> Vec<Vec<T>> {
    if rows.len() <= size {
        return vec![rows];
    }
    let mut out = Vec::with_capacity(rows.len() / size + 1);
    let mut cur = Vec::with_capacity(size);
    for r in rows {
        cur.push(r);
        if cur.len() == size {
            out.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecError;

    #[test]
    fn par_map_preserves_order() {
        let c = Cluster::new(4);
        let out = c
            .par_map((0..8).collect::<Vec<i32>>(), |i, x| Ok((i, x * 2)))
            .unwrap();
        assert_eq!(out.len(), 8);
        for (i, (wi, v)) in out.iter().enumerate() {
            assert_eq!(*wi, i);
            assert_eq!(*v, (i as i32) * 2);
        }
    }

    #[test]
    fn par_map_propagates_errors() {
        let c = Cluster::new(2);
        let out: Result<Vec<i32>> = c.par_map(vec![1, 2, 3], |_, x| {
            if x == 2 {
                Err(ExecError::Runtime("boom".into()))
            } else {
                Ok(x)
            }
        });
        assert!(out.is_err());
    }

    #[test]
    fn single_item_runs_inline() {
        let c = Cluster::new(8);
        let out = c.par_map(vec![42], |i, x| Ok(i + x)).unwrap();
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn par_map_converts_worker_panics_to_errors() {
        for mode in [SchedulerMode::Pool, SchedulerMode::Spawn] {
            let c = Cluster::new(2).with_scheduler(mode);
            let out: Result<Vec<i32>> = c.par_map(vec![1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("kaboom on {x}");
                }
                Ok(x)
            });
            match out {
                Err(ExecError::Runtime(msg)) => {
                    assert!(msg.contains("kaboom"), "unexpected message: {msg}")
                }
                other => panic!("expected Runtime error, got {other:?}"),
            }
        }
    }

    #[test]
    fn first_error_cancels_siblings() {
        // After one item fails, later items on the same cluster see the
        // flipped token and come back Cancelled instead of running.
        let c = Cluster::new(2);
        let _ = c.par_map(vec![1], |_, _| -> Result<i32> {
            Err(ExecError::Runtime("first failure".into()))
        });
        assert!(c.cancel_token().is_cancelled());
        let out: Result<Vec<i32>> = c.par_map(vec![1], |_, x| Ok(x));
        assert!(matches!(out, Err(ExecError::Cancelled(_))), "got {out:?}");
        // Re-arming restores normal operation.
        c.cancel_token().reset();
        assert_eq!(c.par_map(vec![1], |_, x| Ok(x)).unwrap(), vec![1]);
    }

    #[test]
    fn cancel_token_flips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.cancel(), "first cancel must win");
        assert!(!t.cancel(), "second cancel must lose");
        assert!(t.is_cancelled());
    }

    #[test]
    fn chunk_rows_splits_and_preserves_order() {
        assert_eq!(chunk_rows(Vec::<i32>::new(), 4), vec![Vec::<i32>::new()]);
        assert_eq!(chunk_rows(vec![1, 2, 3], 4), vec![vec![1, 2, 3]]);
        assert_eq!(
            chunk_rows((0..10).collect::<Vec<_>>(), 4),
            vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]
        );
    }

    #[test]
    fn morsel_map_matches_sequential_on_skew() {
        // One partition holds nearly all rows; morsel outputs must still
        // arrive per partition in row order.
        let parts: Vec<Vec<i64>> =
            vec![(0..900).collect(), (900..950).collect(), vec![], (950..1000).collect()];
        let c = Cluster::new(4)
            .with_pool(Arc::new(WorkerPool::new(4)))
            .with_morsel_rows(16);
        let out = c
            .morsel_map(parts.clone(), |p, rows| {
                Ok(rows.into_iter().map(|x| x * 2 + p as i64).collect::<Vec<_>>())
            })
            .unwrap();
        assert_eq!(out.len(), 4);
        for (p, (morsels, rows)) in out.into_iter().zip(parts).enumerate() {
            let flat: Vec<i64> = morsels.into_iter().flatten().collect();
            let want: Vec<i64> = rows.into_iter().map(|x| x * 2 + p as i64).collect();
            assert_eq!(flat, want, "partition {p}");
        }
    }

    #[test]
    fn morsel_map_empty_partition_yields_one_morsel() {
        let c = Cluster::new(2).with_morsel_rows(8);
        let out = c
            .morsel_map(vec![Vec::<i32>::new(), vec![1]], |_, rows| Ok(rows.len()))
            .unwrap();
        assert_eq!(out, vec![vec![0], vec![1]]);
    }

    #[test]
    fn morsel_map_spawn_mode_is_partition_granular() {
        let c = Cluster::new(2)
            .with_scheduler(SchedulerMode::Spawn)
            .with_morsel_rows(2);
        let out = c
            .morsel_map(vec![(0..10).collect::<Vec<i32>>(), vec![7]], |_, rows| {
                Ok(rows.len())
            })
            .unwrap();
        // Spawn mode never splits: one morsel per partition.
        assert_eq!(out, vec![vec![10], vec![1]]);
    }

    #[test]
    fn morsel_map_propagates_errors_and_panics() {
        let c = Cluster::new(2)
            .with_pool(Arc::new(WorkerPool::new(2)))
            .with_morsel_rows(1);
        let err = c
            .morsel_map(vec![vec![1, 2, 3]], |_, rows| {
                if rows == [2] {
                    Err(ExecError::Runtime("bad morsel".into()))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::Runtime(ref m) if m.contains("bad morsel")));
        // The error flipped the query-wide cancel token; re-arm it the way
        // Executor::execute does at the start of each query.
        c.cancel_token().reset();
        let err = c
            .morsel_map(vec![vec![1, 2, 3]], |_, rows: Vec<i32>| {
                if rows == [3] {
                    panic!("morsel panic");
                }
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::Runtime(ref m) if m.contains("morsel panic")));
    }
}
