//! The simulated shared-nothing cluster.

use crate::{ExecError, Result};

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// A cluster of `W` shared-nothing workers.
///
/// Substitution note (see DESIGN.md): the paper ran on 10 EC2 machines with
/// Hadoop; here each "machine" is a thread and each table partition is that
/// machine's local data. All dataflow properties the paper measures —
/// per-tuple fixed costs, shuffle volumes, blocking amortization, and the
/// §5 load-imbalance effect of hashing 100 blocks onto 80 cores — are
/// preserved, because they are properties of the partitioned dataflow
/// shape, not of the transport.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: usize,
}

impl Cluster {
    /// A cluster with `workers` workers (≥ 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        Cluster { workers }
    }

    /// Number of workers (== partitions of every table and intermediate).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(worker_index, item)` for every item on parallel worker
    /// threads, preserving item order in the result. Errors from any
    /// worker are propagated (first one wins), and a worker that panics
    /// surfaces as [`ExecError::Runtime`] instead of tearing down the
    /// process — a query must not crash the database.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Sync,
    {
        // Single worker or single item: run inline, no thread overhead.
        if items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let results: Vec<Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let f = &f;
                    scope.spawn(move || f(i, item))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        lardb_obs::global().counter("exec.worker_panics").inc();
                        Err(ExecError::Runtime(format!(
                            "worker thread panicked: {}",
                            panic_message(payload.as_ref())
                        )))
                    })
                })
                .collect()
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecError;

    #[test]
    fn par_map_preserves_order() {
        let c = Cluster::new(4);
        let out = c
            .par_map((0..8).collect::<Vec<i32>>(), |i, x| Ok((i, x * 2)))
            .unwrap();
        assert_eq!(out.len(), 8);
        for (i, (wi, v)) in out.iter().enumerate() {
            assert_eq!(*wi, i);
            assert_eq!(*v, (i as i32) * 2);
        }
    }

    #[test]
    fn par_map_propagates_errors() {
        let c = Cluster::new(2);
        let out: Result<Vec<i32>> = c.par_map(vec![1, 2, 3], |_, x| {
            if x == 2 {
                Err(ExecError::Runtime("boom".into()))
            } else {
                Ok(x)
            }
        });
        assert!(out.is_err());
    }

    #[test]
    fn single_item_runs_inline() {
        let c = Cluster::new(8);
        let out = c.par_map(vec![42], |i, x| Ok(i + x)).unwrap();
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn par_map_converts_worker_panics_to_errors() {
        let c = Cluster::new(2);
        let out: Result<Vec<i32>> = c.par_map(vec![1, 2, 3], |_, x| {
            if x == 2 {
                panic!("kaboom on {x}");
            }
            Ok(x)
        });
        match out {
            Err(ExecError::Runtime(msg)) => {
                assert!(msg.contains("kaboom"), "unexpected message: {msg}")
            }
            other => panic!("expected Runtime error, got {other:?}"),
        }
    }
}
