//! Per-operator runtime statistics.
//!
//! Figure 4 of the paper breaks the tuple-based vs vector-based Gram
//! computation into per-operation running times (join vs aggregation).
//! The executor records, for every physical operator instance: wall time,
//! output rows, and — for exchanges — rows and bytes that crossed worker
//! boundaries. Under a serialized transport (`serialized` / `tcp` modes)
//! exchanges additionally report per-channel detail: encoded frames,
//! actual wire bytes, and time spent blocked enqueueing into a full
//! channel (backpressure).

use std::collections::BTreeMap;
use std::time::Duration;

/// Traffic over one directed worker-to-worker channel of an exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Sending worker.
    pub from: usize,
    /// Receiving worker.
    pub to: usize,
    /// Rows shipped over this channel.
    pub rows: usize,
    /// Actual encoded bytes shipped (frame headers and schema included).
    pub bytes: usize,
    /// Frames shipped (one schema frame plus row batches).
    pub frames: usize,
    /// Time the sender spent blocked in `send` because the channel (or
    /// socket buffer) was full — observed backpressure.
    pub enqueue_block: Duration,
}

/// What one exchange moved, in aggregate and per channel.
///
/// In `pointer` mode `bytes` is an *estimate* from in-memory payload
/// sizes and `channels` is empty; under a serialized transport `bytes`
/// counts actual encoded frames and `channels` has one entry per
/// directed channel that carried data.
#[derive(Debug, Clone, Default)]
pub struct ShuffleStats {
    /// Rows that crossed a partition boundary.
    pub rows: usize,
    /// Bytes that crossed a partition boundary.
    pub bytes: usize,
    /// Encoded frames shipped (0 in pointer mode).
    pub frames: usize,
    /// Total sender time blocked on full channels, summed over channels.
    pub enqueue_block: Duration,
    /// Per-channel detail (empty in pointer mode).
    pub channels: Vec<ChannelStats>,
    /// True when `bytes` is a pointer-mode estimate rather than a count of
    /// actual encoded wire bytes. Display marks such values with `~` so
    /// estimated and measured bytes are never conflated.
    pub estimated: bool,
}

impl ShuffleStats {
    /// Pointer-mode record: estimated bytes, no channel detail.
    pub fn estimated(rows: usize, bytes: usize) -> Self {
        ShuffleStats { rows, bytes, estimated: true, ..ShuffleStats::default() }
    }

    /// Aggregates per-channel records into totals.
    pub fn from_channels(channels: Vec<ChannelStats>) -> Self {
        let mut s = ShuffleStats { channels, ..ShuffleStats::default() };
        for c in &s.channels {
            s.rows += c.rows;
            s.bytes += c.bytes;
            s.frames += c.frames;
            s.enqueue_block += c.enqueue_block;
        }
        s
    }
}

/// Out-of-core activity of one operator: what it wrote to and read back
/// from spill files when its memory reservation was denied. All zeros for
/// operators that stayed in memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Spill files created.
    pub files: usize,
    /// Bytes written to spill files (framing and fin frames included).
    pub bytes_written: usize,
    /// Bytes read back from spill files.
    pub bytes_read: usize,
    /// Partition buckets the operator's state was spilled into.
    pub partitions: usize,
}

impl SpillStats {
    /// Accumulates another record (e.g. a recursive grace-join level).
    pub fn merge(&mut self, other: SpillStats) {
        self.files += other.files;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.partitions += other.partitions;
    }

    /// True when any out-of-core activity happened.
    pub fn spilled(&self) -> bool {
        self.files > 0 || self.bytes_written > 0
    }
}

/// Vectorized-execution activity of one operator: how much of its input
/// went through the compiled columnar engine. All zeros for operators
/// that ran the row interpreter (or never take the vectorized path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Column batches (morsel chunks) evaluated by compiled kernels.
    pub batches: usize,
    /// Rows that went through the compiled path.
    pub rows: usize,
    /// Kernel invocations (bytecode instructions × successful batches).
    pub kernels: usize,
    /// Chunks replayed through the row interpreter because a kernel
    /// declined (unsupported type mix, overflow, lane error).
    pub fallbacks: usize,
}

impl BatchStats {
    /// Accumulates another record (e.g. a fused stage's counters).
    pub fn merge(&mut self, other: BatchStats) {
        self.batches += other.batches;
        self.rows += other.rows;
        self.kernels += other.kernels;
        self.fallbacks += other.fallbacks;
    }

    /// True when any vectorized activity happened.
    pub fn vectorized(&self) -> bool {
        self.batches > 0 || self.fallbacks > 0
    }
}

/// Statistics for one operator instance.
#[derive(Debug, Clone)]
pub struct OperatorStats {
    /// Operator id from the physical plan.
    pub id: usize,
    /// Operator label (`HashJoin`, `Exchange(Hash)`, …).
    pub label: String,
    /// Wall-clock time spent in this operator (excluding children).
    pub wall: Duration,
    /// Rows produced.
    pub rows_out: usize,
    /// Rows, bytes and per-channel traffic moved between partitions
    /// (exchanges only; empty elsewhere).
    pub shuffle: ShuffleStats,
    /// Out-of-core activity (hash join / aggregation under a memory
    /// budget; all zeros for in-memory execution).
    pub spill: SpillStats,
    /// Vectorized (compiled columnar) activity; all zeros under the row
    /// interpreter.
    pub batch: BatchStats,
}

impl OperatorStats {
    /// Rows that moved between partitions (exchanges only).
    pub fn rows_shuffled(&self) -> usize {
        self.shuffle.rows
    }

    /// Bytes that moved between partitions (exchanges only).
    pub fn bytes_shuffled(&self) -> usize {
        self.shuffle.bytes
    }
}

/// Statistics for one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    ops: Vec<OperatorStats>,
    /// Kernel-dispatch choices (dense vs skip-zero vs sparse kernels) made
    /// while this query executed. Attributed by snapshotting the
    /// process-wide dispatch counters around execution, so concurrent
    /// queries' kernels can overlap into each other's counts.
    pub dispatch: lardb_la::DispatchCounters,
}

impl ExecStats {
    /// Empty stats.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Records one operator's stats.
    pub fn record(&mut self, op: OperatorStats) {
        self.ops.push(op);
    }

    /// All operator records, in completion order (children first).
    pub fn operators(&self) -> &[OperatorStats] {
        &self.ops
    }

    /// Total wall time across operators (approximates query time; operators
    /// run sequentially stage-by-stage).
    pub fn total_time(&self) -> Duration {
        self.ops.iter().map(|o| o.wall).sum()
    }

    /// Total bytes shuffled across all exchanges.
    pub fn total_bytes_shuffled(&self) -> usize {
        self.ops.iter().map(|o| o.shuffle.bytes).sum()
    }

    /// Total rows shuffled across all exchanges.
    pub fn total_rows_shuffled(&self) -> usize {
        self.ops.iter().map(|o| o.shuffle.rows).sum()
    }

    /// Total encoded frames shipped across all exchanges (0 unless a
    /// serialized transport ran).
    pub fn total_frames(&self) -> usize {
        self.ops.iter().map(|o| o.shuffle.frames).sum()
    }

    /// Total sender time spent blocked on full channels.
    pub fn total_enqueue_block(&self) -> Duration {
        self.ops.iter().map(|o| o.shuffle.enqueue_block).sum()
    }

    /// Total bytes written to spill files across all operators (0 unless
    /// a memory budget forced out-of-core execution).
    pub fn total_spill_bytes(&self) -> usize {
        self.ops.iter().map(|o| o.spill.bytes_written).sum()
    }

    /// Total spill files created across all operators.
    pub fn total_spill_files(&self) -> usize {
        self.ops.iter().map(|o| o.spill.files).sum()
    }

    /// Total column batches evaluated by compiled kernels (0 under the
    /// row interpreter).
    pub fn total_batches(&self) -> usize {
        self.ops.iter().map(|o| o.batch.batches).sum()
    }

    /// Total rows that went through the compiled columnar path.
    pub fn total_batch_rows(&self) -> usize {
        self.ops.iter().map(|o| o.batch.rows).sum()
    }

    /// Total compiled-kernel invocations across all operators.
    pub fn total_kernels(&self) -> usize {
        self.ops.iter().map(|o| o.batch.kernels).sum()
    }

    /// Total chunks replayed through the row interpreter after a kernel
    /// declined.
    pub fn total_fallbacks(&self) -> usize {
        self.ops.iter().map(|o| o.batch.fallbacks).sum()
    }

    /// Wall time grouped by operator label — the Figure 4 breakdown.
    pub fn time_by_label(&self) -> BTreeMap<String, Duration> {
        let mut m = BTreeMap::new();
        for o in &self.ops {
            *m.entry(o.label.clone()).or_insert(Duration::ZERO) += o.wall;
        }
        m
    }

    /// Wall time for labels matching a predicate — e.g. all joins.
    pub fn time_where(&self, pred: impl Fn(&str) -> bool) -> Duration {
        self.ops.iter().filter(|o| pred(&o.label)).map(|o| o.wall).sum()
    }

    /// Merges another execution's stats into this one (multi-statement
    /// workloads sum their queries).
    pub fn merge(&mut self, other: &ExecStats) {
        self.ops.extend(other.ops.iter().cloned());
        self.dispatch = self.dispatch.plus(&other.dispatch);
    }

    /// Renders a human-readable table. Exchanges that ran over a
    /// serialized transport get one indented sub-line per channel;
    /// pointer-mode byte estimates are marked `~` to keep them distinct
    /// from measured wire bytes.
    pub fn display_table(&self) -> String {
        // The operator column grows to fit the longest label so long
        // labels never push the numeric columns out of alignment.
        let label_w = self
            .ops
            .iter()
            .map(|o| o.label.len())
            .max()
            .unwrap_or(0)
            .max(24);
        let mut out = format!(
            "{:<5} {:<label_w$} {:>9} {:>9} {:>15} {:>13} {:>8} {:>12}\n",
            "id", "operator", "time_ms", "rows", "shuffled_rows", "shuffled_MB", "frames", "blocked_ms",
        );
        for o in &self.ops {
            let mb = format!(
                "{}{:.3}",
                if o.shuffle.estimated { "~" } else { "" },
                o.shuffle.bytes as f64 / 1e6,
            );
            out.push_str(&format!(
                "{:<5} {:<label_w$} {:>9.3} {:>9} {:>15} {:>13} {:>8} {:>12.3}\n",
                o.id,
                o.label,
                o.wall.as_secs_f64() * 1e3,
                o.rows_out,
                o.shuffle.rows,
                mb,
                o.shuffle.frames,
                o.shuffle.enqueue_block.as_secs_f64() * 1e3,
            ));
            for c in &o.shuffle.channels {
                out.push_str(&format!(
                    "        ch {}->{}: {} rows, {} bytes, {}, blocked {:.3} ms\n",
                    c.from,
                    c.to,
                    c.rows,
                    c.bytes,
                    plural(c.frames, "frame"),
                    c.enqueue_block.as_secs_f64() * 1e3,
                ));
            }
            if o.spill.spilled() {
                out.push_str(&format!(
                    "        spill: {}, {} buckets, {} bytes written, {} bytes read\n",
                    plural(o.spill.files, "file"),
                    o.spill.partitions,
                    o.spill.bytes_written,
                    o.spill.bytes_read,
                ));
            }
            if o.batch.vectorized() {
                out.push_str(&format!(
                    "        vec: {} batches, {} rows, {}, {}\n",
                    o.batch.batches,
                    o.batch.rows,
                    plural(o.batch.kernels, "kernel"),
                    plural(o.batch.fallbacks, "fallback"),
                ));
            }
        }
        out
    }
}

/// `1 frame`, `2 frames` — correct pluralization for count displays.
fn plural(n: usize, unit: &str) -> String {
    if n == 1 {
        format!("{n} {unit}")
    } else {
        format!("{n} {unit}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: usize, label: &str, ms: u64, bytes: usize) -> OperatorStats {
        OperatorStats {
            id,
            label: label.into(),
            wall: Duration::from_millis(ms),
            rows_out: id * 10,
            shuffle: ShuffleStats::estimated(id, bytes),
            spill: SpillStats::default(),
            batch: BatchStats::default(),
        }
    }

    #[test]
    fn totals_and_grouping() {
        let mut s = ExecStats::new();
        s.record(op(1, "HashJoin", 10, 0));
        s.record(op(2, "HashJoin", 5, 0));
        s.record(op(3, "Exchange(Hash)", 2, 100));
        assert_eq!(s.total_time(), Duration::from_millis(17));
        assert_eq!(s.total_bytes_shuffled(), 100);
        assert_eq!(s.total_rows_shuffled(), 6);
        let by = s.time_by_label();
        assert_eq!(by["HashJoin"], Duration::from_millis(15));
        assert_eq!(
            s.time_where(|l| l.starts_with("Exchange")),
            Duration::from_millis(2)
        );
    }

    #[test]
    fn merge_and_display() {
        let mut a = ExecStats::new();
        a.record(op(1, "Filter", 1, 0));
        let mut b = ExecStats::new();
        b.record(op(2, "Project", 1, 0));
        a.merge(&b);
        assert_eq!(a.operators().len(), 2);
        let table = a.display_table();
        assert!(table.contains("Filter"));
        assert!(table.contains("Project"));
    }

    #[test]
    fn channel_aggregation_and_display() {
        let channels = vec![
            ChannelStats {
                from: 0,
                to: 1,
                rows: 10,
                bytes: 800,
                frames: 2,
                enqueue_block: Duration::from_millis(3),
            },
            ChannelStats {
                from: 2,
                to: 1,
                rows: 5,
                bytes: 400,
                frames: 1,
                enqueue_block: Duration::from_millis(1),
            },
        ];
        let shuffle = ShuffleStats::from_channels(channels);
        assert_eq!(shuffle.rows, 15);
        assert_eq!(shuffle.bytes, 1200);
        assert_eq!(shuffle.frames, 3);
        assert_eq!(shuffle.enqueue_block, Duration::from_millis(4));

        let mut s = ExecStats::new();
        s.record(OperatorStats {
            id: 7,
            label: "Exchange(Hash)".into(),
            wall: Duration::from_millis(2),
            rows_out: 15,
            shuffle,
            spill: SpillStats::default(),
            batch: BatchStats::default(),
        });
        assert_eq!(s.total_frames(), 3);
        assert_eq!(s.total_enqueue_block(), Duration::from_millis(4));
        let table = s.display_table();
        assert!(table.contains("ch 0->1: 10 rows, 800 bytes, 2 frames"), "{table}");
        assert!(table.contains("ch 2->1: 5 rows, 400 bytes, 1 frame,"), "{table}");
    }

    #[test]
    fn display_marks_estimated_bytes_and_fits_long_labels() {
        let mut s = ExecStats::new();
        s.record(op(1, "Exchange(Hash)", 1, 2_000_000)); // estimated() helper
        let long = "HashJoin(some.very.long.column = other.even.longer.column)";
        s.record(OperatorStats {
            id: 2,
            label: long.into(),
            wall: Duration::from_millis(1),
            rows_out: 1,
            shuffle: ShuffleStats::from_channels(vec![ChannelStats {
                from: 0,
                to: 1,
                rows: 1,
                bytes: 3_000_000,
                frames: 1,
                enqueue_block: Duration::ZERO,
            }]),
            spill: SpillStats::default(),
            batch: BatchStats::default(),
        });
        let table = s.display_table();
        // Pointer-mode estimate is marked; measured bytes are not.
        assert!(table.contains("~2.000"), "{table}");
        assert!(table.contains(" 3.000") && !table.contains("~3.000"), "{table}");
        // Long labels widen the column instead of breaking alignment: every
        // full-width row is the same length.
        let rows: Vec<&str> = table
            .lines()
            .filter(|l| !l.starts_with(' '))
            .collect();
        assert!(rows.iter().all(|r| r.len() == rows[0].len()), "{table}");
    }

    #[test]
    fn spill_totals_and_display() {
        let mut s = ExecStats::new();
        let mut o = op(1, "HashJoin", 3, 0);
        o.spill = SpillStats { files: 2, bytes_written: 4096, bytes_read: 4096, partitions: 8 };
        assert!(o.spill.spilled());
        s.record(o);
        s.record(op(2, "Filter", 1, 0)); // no spill → no detail line
        assert_eq!(s.total_spill_bytes(), 4096);
        assert_eq!(s.total_spill_files(), 2);
        let table = s.display_table();
        assert!(
            table.contains("spill: 2 files, 8 buckets, 4096 bytes written, 4096 bytes read"),
            "{table}"
        );
        assert_eq!(table.matches("spill:").count(), 1, "{table}");

        let mut merged = SpillStats::default();
        assert!(!merged.spilled());
        merged.merge(SpillStats { files: 1, bytes_written: 10, bytes_read: 5, partitions: 4 });
        merged.merge(SpillStats { files: 2, bytes_written: 30, bytes_read: 45, partitions: 4 });
        assert_eq!(merged, SpillStats { files: 3, bytes_written: 40, bytes_read: 50, partitions: 8 });
    }

    #[test]
    fn batch_totals_and_display() {
        let mut s = ExecStats::new();
        let mut o = op(1, "Filter [vec]", 2, 0);
        o.batch = BatchStats { batches: 3, rows: 2048, kernels: 9, fallbacks: 1 };
        assert!(o.batch.vectorized());
        s.record(o);
        s.record(op(2, "HashJoin", 1, 0)); // interpreted → no detail line
        assert_eq!(s.total_batches(), 3);
        assert_eq!(s.total_batch_rows(), 2048);
        assert_eq!(s.total_kernels(), 9);
        assert_eq!(s.total_fallbacks(), 1);
        let table = s.display_table();
        assert!(
            table.contains("vec: 3 batches, 2048 rows, 9 kernels, 1 fallback"),
            "{table}"
        );
        assert_eq!(table.matches("vec:").count(), 1, "{table}");

        let mut merged = BatchStats::default();
        assert!(!merged.vectorized());
        merged.merge(BatchStats { batches: 1, rows: 10, kernels: 2, fallbacks: 0 });
        merged.merge(BatchStats { batches: 2, rows: 20, kernels: 4, fallbacks: 1 });
        assert_eq!(merged, BatchStats { batches: 3, rows: 30, kernels: 6, fallbacks: 1 });
    }
}
