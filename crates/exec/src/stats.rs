//! Per-operator runtime statistics.
//!
//! Figure 4 of the paper breaks the tuple-based vs vector-based Gram
//! computation into per-operation running times (join vs aggregation).
//! The executor records, for every physical operator instance: wall time,
//! output rows, and — for exchanges — rows and bytes that crossed worker
//! boundaries.

use std::collections::BTreeMap;
use std::time::Duration;

/// Statistics for one operator instance.
#[derive(Debug, Clone)]
pub struct OperatorStats {
    /// Operator id from the physical plan.
    pub id: usize,
    /// Operator label (`HashJoin`, `Exchange(Hash)`, …).
    pub label: String,
    /// Wall-clock time spent in this operator (excluding children).
    pub wall: Duration,
    /// Rows produced.
    pub rows_out: usize,
    /// Rows that moved between partitions (exchanges only).
    pub rows_shuffled: usize,
    /// Bytes that moved between partitions (exchanges only).
    pub bytes_shuffled: usize,
}

/// Statistics for one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    ops: Vec<OperatorStats>,
}

impl ExecStats {
    /// Empty stats.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Records one operator's stats.
    pub fn record(&mut self, op: OperatorStats) {
        self.ops.push(op);
    }

    /// All operator records, in completion order (children first).
    pub fn operators(&self) -> &[OperatorStats] {
        &self.ops
    }

    /// Total wall time across operators (approximates query time; operators
    /// run sequentially stage-by-stage).
    pub fn total_time(&self) -> Duration {
        self.ops.iter().map(|o| o.wall).sum()
    }

    /// Total bytes shuffled across all exchanges.
    pub fn total_bytes_shuffled(&self) -> usize {
        self.ops.iter().map(|o| o.bytes_shuffled).sum()
    }

    /// Total rows shuffled across all exchanges.
    pub fn total_rows_shuffled(&self) -> usize {
        self.ops.iter().map(|o| o.rows_shuffled).sum()
    }

    /// Wall time grouped by operator label — the Figure 4 breakdown.
    pub fn time_by_label(&self) -> BTreeMap<String, Duration> {
        let mut m = BTreeMap::new();
        for o in &self.ops {
            *m.entry(o.label.clone()).or_insert(Duration::ZERO) += o.wall;
        }
        m
    }

    /// Wall time for labels matching a predicate — e.g. all joins.
    pub fn time_where(&self, pred: impl Fn(&str) -> bool) -> Duration {
        self.ops.iter().filter(|o| pred(&o.label)).map(|o| o.wall).sum()
    }

    /// Merges another execution's stats into this one (multi-statement
    /// workloads sum their queries).
    pub fn merge(&mut self, other: &ExecStats) {
        self.ops.extend(other.ops.iter().cloned());
    }

    /// Renders a human-readable table.
    pub fn display_table(&self) -> String {
        let mut out = String::from(
            "id    operator                 time_ms      rows    shuffled_rows   shuffled_MB\n",
        );
        for o in &self.ops {
            out.push_str(&format!(
                "{:<5} {:<24} {:>9.3} {:>9} {:>15} {:>13.3}\n",
                o.id,
                o.label,
                o.wall.as_secs_f64() * 1e3,
                o.rows_out,
                o.rows_shuffled,
                o.bytes_shuffled as f64 / 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: usize, label: &str, ms: u64, bytes: usize) -> OperatorStats {
        OperatorStats {
            id,
            label: label.into(),
            wall: Duration::from_millis(ms),
            rows_out: id * 10,
            rows_shuffled: id,
            bytes_shuffled: bytes,
        }
    }

    #[test]
    fn totals_and_grouping() {
        let mut s = ExecStats::new();
        s.record(op(1, "HashJoin", 10, 0));
        s.record(op(2, "HashJoin", 5, 0));
        s.record(op(3, "Exchange(Hash)", 2, 100));
        assert_eq!(s.total_time(), Duration::from_millis(17));
        assert_eq!(s.total_bytes_shuffled(), 100);
        assert_eq!(s.total_rows_shuffled(), 6);
        let by = s.time_by_label();
        assert_eq!(by["HashJoin"], Duration::from_millis(15));
        assert_eq!(
            s.time_where(|l| l.starts_with("Exchange")),
            Duration::from_millis(2)
        );
    }

    #[test]
    fn merge_and_display() {
        let mut a = ExecStats::new();
        a.record(op(1, "Filter", 1, 0));
        let mut b = ExecStats::new();
        b.record(op(2, "Project", 1, 0));
        a.merge(&b);
        assert_eq!(a.operators().len(), 2);
        let table = a.display_table();
        assert!(table.contains("Filter"));
        assert!(table.contains("Project"));
    }
}
