//! The physical-plan interpreter.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lardb_buf::{MemoryGovernor, MemoryReservation, SpillFile, SpillWriter};
use lardb_net::codec::{
    checksum_update, decode_frame, encode_fin_frame, encode_rows_frame, encode_schema_frame,
    encode_trace_frame, FinSummary, Frame, CHECKSUM_SEED,
};
use lardb_net::{
    ChannelTransport, FaultyTransport, Mesh, NetConfig, NetError, TcpTransport, Transport,
    TransportMode,
};
use lardb_planner::physical::{AggMode, ExchangeKind, PhysicalPlan};
use lardb_planner::{AggExpr, Expr};
use lardb_storage::ops::CompositeKey;
use lardb_storage::table::hash_partition;
use lardb_storage::{Catalog, Partitioning, Row, Schema, Value};

use crate::agg::{state_arity, Accumulator};
use crate::batch::{Col, ColumnBatch};
use crate::cluster::{flag_abort, panic_message, CancelToken, Cluster};
use crate::compile::{ExprEngine, Program};
use crate::eval::{eval, eval_predicate_with, eval_with};
use crate::kernels;
use crate::stats::{
    BatchStats, ChannelStats, ExecStats, OperatorStats, ShuffleStats, SpillStats,
};
use crate::{ExecError, Result};

/// Rows per encoded frame on serialized transports: large enough to
/// amortize the frame header, small enough that a partition's stream
/// spans several frames and real backpressure can occur.
const ROWS_PER_FRAME: usize = 256;

/// How often tight row loops (nested-loop join pairs, scan re-deals)
/// re-check the cancel token: every this many iterations. Cheap enough to
/// be noise, frequent enough that a KILL lands in milliseconds.
const CANCEL_CHECK_PAIRS: usize = 8192;

/// Rows per [`ColumnBatch`] chunk in the vectorized engine: large enough
/// to amortize the pivot and per-instruction dispatch, small enough that
/// a batch's columns stay cache-resident.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Partitioned rows: one `Vec<Row>` per worker.
type Parts = Vec<Vec<Row>>;

/// Buckets a spilled build side (or aggregation state) fans out into per
/// spill level. 8 buckets per level × up to [`MAX_SPILL_DEPTH`] levels
/// bounds each bucket at fanout^depth-th of the input.
const SPILL_FANOUT: usize = 8;

/// Recursion cap for the grace join. A bucket still over budget at this
/// depth is duplicate-key-heavy and will not shrink by re-partitioning, so
/// it is processed under a forced (overcommitted) reservation instead of
/// recursing forever.
const MAX_SPILL_DEPTH: usize = 6;

/// Memory-budget knobs for out-of-core execution: which [`MemoryGovernor`]
/// operators reserve against, and where spill files go.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    governor: Arc<MemoryGovernor>,
    spill_dir: PathBuf,
}

impl MemoryConfig {
    /// The shared process-wide governor, sized by `LARDB_MEM_BUDGET_MB`
    /// (unset or `0` = unbounded), spilling to `LARDB_SPILL_DIR` or the OS
    /// temp dir.
    pub fn shared() -> Self {
        MemoryConfig {
            governor: Arc::clone(lardb_buf::global()),
            spill_dir: lardb_buf::default_spill_dir(),
        }
    }

    /// A dedicated governor with an explicit budget in bytes (`None` =
    /// unbounded) and an optional spill directory override.
    pub fn with_budget(budget: Option<u64>, spill_dir: Option<PathBuf>) -> Self {
        MemoryConfig {
            governor: Arc::new(MemoryGovernor::new(budget)),
            spill_dir: spill_dir.unwrap_or_else(lardb_buf::default_spill_dir),
        }
    }

    /// Wraps an existing governor (e.g. a tenant sub-governor created with
    /// [`MemoryGovernor::child`]) with the given spill directory.
    pub fn with_governor(governor: Arc<MemoryGovernor>, spill_dir: PathBuf) -> Self {
        MemoryConfig { governor, spill_dir }
    }

    /// Overrides the spill directory (builder style), keeping the
    /// governor unchanged.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = dir;
        self
    }

    /// The governor operators reserve bytes against.
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.governor
    }

    /// Directory spill files are created in.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_dir
    }

    /// True when a finite budget is configured — the only case where the
    /// out-of-core paths can engage.
    pub fn bounded(&self) -> bool {
        self.governor.budget().is_some()
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::shared()
    }
}

/// The result of executing a physical plan.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Output schema.
    pub schema: Schema,
    /// Output rows, one vector per worker partition.
    pub partitions: Parts,
    /// Per-operator runtime statistics.
    pub stats: ExecStats,
}

impl ExecutionResult {
    /// All rows, concatenated in partition order. Clones every row
    /// (cheap since rows are `Arc`-backed, but prefer [`Self::into_rows`]
    /// when the result is no longer needed).
    pub fn rows(&self) -> Vec<Row> {
        self.partitions.iter().flat_map(|p| p.iter().cloned()).collect()
    }

    /// Consumes the result, yielding all rows in partition order without
    /// cloning any of them.
    pub fn into_rows(self) -> Vec<Row> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Total row count.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }
}

/// Executes physical plans against a catalog on a simulated cluster.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    cluster: Cluster,
    fuse: bool,
    mode: TransportMode,
    net: NetConfig,
    mem: MemoryConfig,
    engine: ExprEngine,
    batch_rows: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor (join→aggregate fusion enabled, pointer
    /// transport, compiled expression engine).
    pub fn new(catalog: &'a Catalog, cluster: Cluster) -> Self {
        Executor {
            catalog,
            cluster,
            fuse: true,
            mode: TransportMode::default(),
            net: NetConfig::default(),
            mem: MemoryConfig::default(),
            engine: ExprEngine::default(),
            batch_rows: DEFAULT_BATCH_ROWS,
        }
    }

    /// Applies a memory budget: hash joins and grouped aggregations reserve
    /// their state against the config's governor and fall back to disk-backed
    /// out-of-core execution when a reservation is denied.
    pub fn with_memory(mut self, mem: MemoryConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Enables or disables pipelined join→aggregate fusion (the ablation
    /// benchmark measures the difference).
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Selects how exchanges move rows between workers: `pointer` keeps
    /// the zero-copy in-memory shuffle with byte *estimates*; `serialized`
    /// and `tcp` push every boundary-crossing batch through the wire codec
    /// and meter actual encoded bytes.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.mode = mode;
        self
    }

    /// Applies network-layer knobs (timeouts, frame-size cap) and the
    /// optional chaos-testing fault plan to this executor's serialized
    /// exchanges.
    pub fn with_net_config(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Selects the expression engine: `Compiled` (default) evaluates
    /// filter/project/partial-aggregate chains column-at-a-time over
    /// [`ColumnBatch`] morsels with compiled bytecode; `Interpret` keeps
    /// the row-at-a-time reference path (the ablation arm).
    pub fn with_expr_engine(mut self, engine: ExprEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Rows per column batch in the vectorized engine (clamped to ≥ 1).
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }

    /// The expression engine this executor evaluates with.
    pub fn expr_engine(&self) -> ExprEngine {
        self.engine
    }

    /// The transport mode exchanges run under.
    pub fn transport_mode(&self) -> TransportMode {
        self.mode
    }

    /// The cluster this executor runs on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs a plan to completion, materializing its output.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<ExecutionResult> {
        // A reused cluster may carry a flipped token from an earlier
        // failed execution; each run starts un-cancelled. An *external*
        // token (a server session's KILL / disconnect wiring) is never
        // re-armed here: a kill landing before execution starts must
        // still abort the query.
        if self.cluster.has_external_cancel() {
            if self.cluster.cancel_token().is_cancelled() {
                return Err(ExecError::Cancelled("query killed before execution".into()));
            }
        } else {
            self.cluster.cancel_token().reset();
        }
        let mut stats = ExecStats::new();
        let partitions = self.run(plan, &mut stats)?;
        publish_metrics(&stats);
        Ok(ExecutionResult { schema: plan.schema(), partitions, stats })
    }

    fn run(&self, plan: &PhysicalPlan, stats: &mut ExecStats) -> Result<Parts> {
        // Evaluate children first so each operator's timer covers only its
        // own work (stage-at-a-time, like the Hadoop substrate).
        let out = match plan {
            PhysicalPlan::TableScan { table, .. } => {
                let t0 = Instant::now();
                let out = self.scan(table)?;
                self.record(plan, stats, t0, &out, ShuffleStats::default());
                out
            }
            PhysicalPlan::Filter { .. } | PhysicalPlan::Project { .. }
                if self.engine == ExprEngine::Compiled =>
            {
                // Vectorized path: the whole adjacent Filter/Project chain
                // fuses into a single morsel kernel over column batches.
                return self.run_vectorized_chain(plan, stats);
            }
            PhysicalPlan::Filter { input, predicate, .. } => {
                let child = self.run(input, stats)?;
                let t0 = Instant::now();
                // Row-range morsels: a skewed partition is drained by
                // whichever pool workers are idle.
                let morsels = self.cluster.morsel_map(child, |_, rows| {
                    let mut keep = Vec::new();
                    let mut scratch = Vec::new();
                    for r in rows {
                        if eval_predicate_with(predicate, &r, &mut scratch)? {
                            keep.push(r);
                        }
                    }
                    Ok(keep)
                })?;
                let out = flatten_morsels(morsels);
                self.record(plan, stats, t0, &out, ShuffleStats::default());
                out
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let child = self.run(input, stats)?;
                let t0 = Instant::now();
                let morsels = self.cluster.morsel_map(child, |_, rows| {
                    let mut mapped = Vec::with_capacity(rows.len());
                    let mut scratch = Vec::new();
                    for r in rows {
                        let mut vals = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            vals.push(eval_with(e, &r, &mut scratch)?);
                        }
                        mapped.push(Row::new(vals));
                    }
                    Ok(mapped)
                })?;
                let out = flatten_morsels(morsels);
                self.record(plan, stats, t0, &out, ShuffleStats::default());
                out
            }
            PhysicalPlan::HashJoin {
                left, right, left_keys, right_keys, residual, ..
            } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                let t0 = Instant::now();
                let (out, spill) =
                    self.hash_join(l, r, left_keys, right_keys, residual.as_ref())?;
                self.record_spill(plan, stats, t0, &out, ShuffleStats::default(), spill);
                out
            }
            PhysicalPlan::NestedLoopJoin { left, right, residual, .. } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                let t0 = Instant::now();
                // Morselize the outer (left) side; every morsel scans the
                // whole co-partitioned right side. A morsel here can run
                // for a long time (|morsel| × |right| pairs), so the
                // cancel token is checked per outer row, not only at the
                // morsel boundary — a KILL must not wait out a cross join.
                let cancel = self.cluster.cancel_token().clone();
                let morsels = self.cluster.morsel_map(l, |p, lrows| {
                    let rp = &r[p];
                    let mut rows = Vec::new();
                    let mut pairs = 0usize;
                    let mut scratch = Vec::new();
                    for lr in &lrows {
                        if cancel.is_cancelled() {
                            return Err(ExecError::Cancelled(
                                "nested-loop join cancelled".into(),
                            ));
                        }
                        for rr in rp {
                            // One outer row against a huge inner side is
                            // still one iteration of the outer check, so
                            // re-check every CANCEL_CHECK_PAIRS pairs.
                            pairs += 1;
                            if pairs.is_multiple_of(CANCEL_CHECK_PAIRS) && cancel.is_cancelled() {
                                return Err(ExecError::Cancelled(
                                    "nested-loop join cancelled".into(),
                                ));
                            }
                            let joined = lr.concat(rr);
                            if let Some(res) = residual {
                                if !eval_predicate_with(res, &joined, &mut scratch)? {
                                    continue;
                                }
                            }
                            rows.push(joined);
                        }
                    }
                    Ok(rows)
                })?;
                let out = flatten_morsels(morsels);
                self.record(plan, stats, t0, &out, ShuffleStats::default());
                out
            }
            PhysicalPlan::HashAggregate { input, group_by, aggs, mode, .. } => {
                // Pipelined join→aggregate fusion: when the aggregate sits
                // on a (possibly projected/filtered) join, stream joined
                // rows straight into the aggregation hash table instead of
                // materializing them — the combiner structure SimSQL's
                // MapReduce substrate provides, and the only way the
                // tuple-based workloads survive realistic scales.
                if self.fuse
                    && matches!(mode, AggMode::Partial | AggMode::Complete)
                {
                    if let Some((transforms, join)) = peel_fusable(input) {
                        return self.run_fused_aggregate(
                            plan, group_by, aggs, *mode, &transforms, join, stats,
                        );
                    }
                }
                if self.engine == ExprEngine::Compiled
                    && matches!(mode, AggMode::Partial | AggMode::Complete)
                {
                    // Vectorized path: any Filter/Project chain under the
                    // aggregate fuses into its per-partition kernel.
                    return self.run_vectorized_aggregate(
                        plan, input, group_by, aggs, *mode, stats,
                    );
                }
                let child = self.run(input, stats)?;
                let t0 = Instant::now();
                // Each morsel pre-aggregates into its own hash table;
                // per-partition partials are then merged sequentially in
                // ascending morsel order, so group order (first-seen) and
                // accumulation order are deterministic no matter which
                // worker ran which morsel.
                let partials = self.cluster.morsel_map(child, |_, rows| {
                    let mut agg = GroupedAgg::new(group_by, aggs, *mode);
                    let mut scratch = Vec::new();
                    for row in &rows {
                        agg.update_row(row, &mut scratch)?;
                    }
                    Ok(agg)
                })?;
                // Under a memory budget, grouped merges go through the
                // spilling path (identical to the in-memory merge while the
                // reservation holds). Global aggregates hold a single
                // group's state and gain nothing from bucketing it.
                let mut spill = SpillStats::default();
                let mut out = Vec::with_capacity(partials.len());
                if self.mem.bounded() && !group_by.is_empty() {
                    for pp in partials {
                        let (rows, sp) =
                            merge_partials_spilling(pp, group_by.len(), aggs, *mode, &self.mem)?;
                        spill.merge(sp);
                        out.push(rows);
                    }
                } else {
                    for pp in partials {
                        out.push(merge_partials(pp)?);
                    }
                }
                // Global aggregates produce exactly one row even over empty
                // input — but only on partition 0 of a gathered stream.
                if group_by.is_empty()
                    && matches!(mode, AggMode::Final | AggMode::Complete)
                    && out.iter().all(Vec::is_empty)
                {
                    out[0] = vec![empty_global_row(aggs)];
                }
                self.record_spill(plan, stats, t0, &out, ShuffleStats::default(), spill);
                out
            }
            PhysicalPlan::Exchange { input, kind, .. } => {
                let child = self.run(input, stats)?;
                let t0 = Instant::now();
                let (out, shuffle) = self.exchange(child, kind, &plan.schema())?;
                self.record(plan, stats, t0, &out, shuffle);
                out
            }
            PhysicalPlan::Sort { input, keys, .. } => {
                let child = self.run(input, stats)?;
                let t0 = Instant::now();
                let w = child.len();
                let mut all: Vec<Row> = child.into_iter().flatten().collect();
                sort_rows(&mut all, keys)?;
                let mut out = vec![Vec::new(); w];
                out[0] = all;
                self.record(plan, stats, t0, &out, ShuffleStats::default());
                out
            }
            PhysicalPlan::Limit { input, n, .. } => {
                let child = self.run(input, stats)?;
                let t0 = Instant::now();
                let w = child.len();
                let mut all: Vec<Row> = child.into_iter().flatten().collect();
                all.truncate(*n);
                let mut out = vec![Vec::new(); w];
                out[0] = all;
                self.record(plan, stats, t0, &out, ShuffleStats::default());
                out
            }
        };
        Ok(out)
    }

    /// Hash join with out-of-core fallback. Each partition's build side
    /// first asks the memory governor for a reservation sized to its rows;
    /// granted partitions build and probe exactly as before (morselized
    /// probe). A denied partition runs as a Grace join: the build rows fan
    /// out into hashed spill buckets on disk, the probe rows are routed to
    /// the same buckets (tagged with their original position), and each
    /// bucket joins independently — recursively re-partitioning while its
    /// rows still exceed the budget. Output rows are restored to exact
    /// probe order, so the result is bit-identical to the in-memory path.
    fn hash_join(
        &self,
        l: Parts,
        r: Parts,
        left_keys: &[Expr],
        right_keys: &[Expr],
        residual: Option<&Expr>,
    ) -> Result<(Parts, SpillStats)> {
        let mem = &self.mem;
        // Build phase: one hash table (or spilled bucket set) per partition
        // (partition-granular; the build side is the smaller input and a
        // shared-table build would need synchronization).
        let prepped: Vec<(BuildSide, SpillStats)> =
            self.cluster.par_map(l, |_, lp| {
                let mut spill = SpillStats::default();
                let footprint = rows_footprint(&lp);
                match mem.governor().try_reserve(footprint) {
                    Some(res) => Ok((
                        BuildSide::InMem {
                            table: build_join_table(lp, left_keys)?,
                            _res: res,
                        },
                        spill,
                    )),
                    None => {
                        let buckets =
                            spill_build_buckets(lp, left_keys, mem, 0, &mut spill)?;
                        Ok((BuildSide::Spilled { buckets }, spill))
                    }
                }
            })?;
        // Probe rows for spilled partitions are held aside; in-memory
        // partitions go through the unchanged morselized probe.
        let mut probe_parts: Parts = Vec::with_capacity(r.len());
        let mut grace_probe: Vec<Vec<Row>> = Vec::with_capacity(r.len());
        for (p, rp) in r.into_iter().enumerate() {
            match prepped.get(p).map(|(side, _)| side) {
                Some(BuildSide::Spilled { .. }) => {
                    probe_parts.push(Vec::new());
                    grace_probe.push(rp);
                }
                _ => {
                    probe_parts.push(rp);
                    grace_probe.push(Vec::new());
                }
            }
        }
        let morsels = self.cluster.morsel_map(probe_parts, |p, rows| {
            match &prepped[p].0 {
                BuildSide::InMem { table, .. } => {
                    probe_join_table(table, rows, right_keys, residual)
                }
                // Spilled partitions got an empty probe vector above.
                BuildSide::Spilled { .. } => Ok(Vec::new()),
            }
        })?;
        let mut out = flatten_morsels(morsels);
        // Grace phase: spilled partitions join bucket-by-bucket, in
        // parallel across partitions.
        let mut spill_total = SpillStats::default();
        let mut jobs: Vec<(usize, Vec<SpillFile>, Vec<Row>)> = Vec::new();
        for (p, (side, sp)) in prepped.into_iter().enumerate() {
            spill_total.merge(sp);
            if let BuildSide::Spilled { buckets } = side {
                jobs.push((p, buckets, std::mem::take(&mut grace_probe[p])));
            }
        }
        if !jobs.is_empty() {
            let results = self.cluster.par_map(jobs, |_, (p, buckets, probe)| {
                let (rows, spill) = grace_join_partition(
                    buckets, probe, left_keys, right_keys, residual, mem,
                )?;
                Ok((p, rows, spill))
            })?;
            for (p, rows, sp) in results {
                out[p] = rows;
                spill_total.merge(sp);
            }
        }
        Ok((out, spill_total))
    }

    /// Pipelined join→aggregate execution. Joined rows flow through the
    /// projection/filter chain straight into the aggregation hash table,
    /// in chunks so join time and aggregation time can still be attributed
    /// separately (Figure 4's breakdown).
    #[allow(clippy::too_many_arguments)]
    fn run_fused_aggregate(
        &self,
        agg_plan: &PhysicalPlan,
        group_by: &[Expr],
        aggs: &[AggExpr],
        mode: AggMode,
        transforms: &[RowTransform<'_>],
        join: &PhysicalPlan,
        stats: &mut ExecStats,
    ) -> Result<Parts> {
        const CHUNK: usize = 1024;

        struct PartOut {
            rows: Vec<Row>,
            joined_rows: usize,
            join_ns: u64,
            agg_ns: u64,
            spill: SpillStats,
        }

        let mem = &self.mem;
        let cancel = self.cluster.cancel_token().clone();
        let fuse_partition = |lp: Vec<Row>,
                              rp: Vec<Row>,
                              join: &PhysicalPlan|
         -> Result<PartOut> {
            let fused_cancelled =
                || ExecError::Cancelled("fused join-aggregate cancelled".into());
            let t_start = Instant::now();
            let mut agg = GroupedAgg::new(group_by, aggs, mode);
            let mut buf: Vec<Row> = Vec::with_capacity(CHUNK);
            let mut scratch: Vec<Value> = Vec::new();
            let mut joined_rows = 0usize;
            let mut agg_ns = 0u64;
            let mut spill = SpillStats::default();

            let mut flush = |buf: &mut Vec<Row>,
                             agg: &mut GroupedAgg,
                             scratch: &mut Vec<Value>|
             -> Result<()> {
                let t = Instant::now();
                for row in buf.drain(..) {
                    agg.update_row(&row, scratch)?;
                }
                add_elapsed(&mut agg_ns, t);
                Ok(())
            };

            let mut emit = |row: Row,
                            buf: &mut Vec<Row>,
                            agg: &mut GroupedAgg,
                            scratch: &mut Vec<Value>|
             -> Result<()> {
                if let Some(row) = apply_transforms(row, transforms, scratch)? {
                    joined_rows += 1;
                    buf.push(row);
                    if buf.len() >= CHUNK {
                        flush(buf, agg, scratch)?;
                    }
                }
                Ok(())
            };

            match join {
                PhysicalPlan::HashJoin { left_keys, right_keys, residual, .. } => {
                    let footprint = rows_footprint(&lp);
                    match mem.governor().try_reserve(footprint) {
                        Some(_res) => {
                            let table = build_join_table(lp, left_keys)?;
                            let mut probed = 0usize;
                            'probe: for r in rp {
                                probed += 1;
                                if probed.is_multiple_of(CANCEL_CHECK_PAIRS)
                                    && cancel.is_cancelled()
                                {
                                    return Err(fused_cancelled());
                                }
                                let mut vals = Vec::with_capacity(right_keys.len());
                                for k in right_keys {
                                    let v = eval_with(k, &r, &mut scratch)?;
                                    if v.is_null() {
                                        continue 'probe;
                                    }
                                    vals.push(v);
                                }
                                if let Some(matches) =
                                    table.get(&CompositeKey::from_values(vals))
                                {
                                    for l in matches {
                                        let joined = l.concat(&r);
                                        if let Some(res) = residual {
                                            if !eval_predicate_with(
                                                res,
                                                &joined,
                                                &mut scratch,
                                            )? {
                                                continue;
                                            }
                                        }
                                        emit(joined, &mut buf, &mut agg, &mut scratch)?;
                                    }
                                }
                            }
                        }
                        None => {
                            // Out-of-core fused join: grace-join the
                            // partition, then stream the joined rows into
                            // the aggregate in exact probe order, so the
                            // result stays bit-identical to the in-memory
                            // fused path.
                            let buckets = spill_build_buckets(
                                lp, left_keys, mem, 0, &mut spill,
                            )?;
                            let (joined, sp) = grace_join_partition(
                                buckets,
                                rp,
                                left_keys,
                                right_keys,
                                residual.as_ref(),
                                mem,
                            )?;
                            spill.merge(sp);
                            for row in joined {
                                emit(row, &mut buf, &mut agg, &mut scratch)?;
                            }
                        }
                    }
                }
                PhysicalPlan::NestedLoopJoin { residual, .. } => {
                    // Same discipline as the unfused nested-loop join: a
                    // KILL must not wait out a cross join, so re-check the
                    // token per outer row and every CANCEL_CHECK_PAIRS
                    // pairs within one outer row's inner scan.
                    let mut pairs = 0usize;
                    for l in &lp {
                        if cancel.is_cancelled() {
                            return Err(fused_cancelled());
                        }
                        for r in &rp {
                            pairs += 1;
                            if pairs.is_multiple_of(CANCEL_CHECK_PAIRS) && cancel.is_cancelled() {
                                return Err(fused_cancelled());
                            }
                            let joined = l.concat(r);
                            if let Some(res) = residual {
                                if !eval_predicate_with(res, &joined, &mut scratch)? {
                                    continue;
                                }
                            }
                            emit(joined, &mut buf, &mut agg, &mut scratch)?;
                        }
                    }
                }
                _ => unreachable!("peel_fusable only yields joins"),
            }
            flush(&mut buf, &mut agg, &mut scratch)?;
            let total_ns = t_start.elapsed().as_nanos() as u64;
            Ok(PartOut {
                rows: agg.finish(),
                joined_rows,
                join_ns: total_ns.saturating_sub(agg_ns),
                agg_ns,
                spill,
            })
        };

        let (left, right) = match join {
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => (left, right),
            _ => unreachable!(),
        };
        let l = self.run(left, stats)?;
        let r = self.run(right, stats)?;
        let pairs: Vec<(Vec<Row>, Vec<Row>)> = l.into_iter().zip(r).collect();
        let parts =
            self.cluster.par_map(pairs, |_, (lp, rp)| fuse_partition(lp, rp, join))?;

        // Attribute wall time across workers as the max (they ran in
        // parallel), matching how the unfused operators are timed.
        let join_ns = parts.iter().map(|p| p.join_ns).max().unwrap_or(0);
        let agg_ns = parts.iter().map(|p| p.agg_ns).max().unwrap_or(0);
        let joined_rows: usize = parts.iter().map(|p| p.joined_rows).sum();
        let mut join_spill = SpillStats::default();
        for p in &parts {
            join_spill.merge(p.spill);
        }
        let mut out: Parts = parts.into_iter().map(|p| p.rows).collect();

        if group_by.is_empty()
            && mode == AggMode::Complete
            && out.iter().all(Vec::is_empty)
        {
            out[0] = vec![empty_global_row(aggs)];
        }

        stats.record(OperatorStats {
            id: join.id(),
            label: join.label(),
            wall: std::time::Duration::from_nanos(join_ns),
            rows_out: joined_rows,
            shuffle: ShuffleStats::default(),
            spill: join_spill,
            batch: BatchStats::default(),
        });
        stats.record(OperatorStats {
            id: agg_plan.id(),
            label: agg_plan.label(),
            wall: std::time::Duration::from_nanos(agg_ns),
            rows_out: out.iter().map(Vec::len).sum(),
            shuffle: ShuffleStats::default(),
            spill: SpillStats::default(),
            batch: BatchStats::default(),
        });
        Ok(out)
    }

    /// Executes a contiguous Filter/Project chain column-at-a-time: the
    /// chain compiles to bytecode once, every morsel is pivoted into
    /// [`ColumnBatch`] chunks, and all stages run over each chunk in one
    /// pass — filters produce selection vectors instead of intermediate
    /// row vectors, projections evaluate only selected lanes. Any chunk a
    /// kernel declines (a type mix it cannot promote, integer overflow, a
    /// lane-level type error) is replayed wholesale through the row
    /// interpreter, so values *and* error classes are identical to
    /// `--expr-engine interpret` by construction.
    fn run_vectorized_chain(
        &self,
        plan: &PhysicalPlan,
        stats: &mut ExecStats,
    ) -> Result<Parts> {
        // Peel the maximal adjacent chain top-down, then run it bottom-up
        // over the base child's partitions.
        let mut nodes: Vec<&PhysicalPlan> = Vec::new();
        let mut base = plan;
        while let PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. } = base
        {
            nodes.push(base);
            base = input;
        }
        let child = self.run(base, stats)?;
        let t0 = Instant::now();
        nodes.reverse(); // bottom-up: deepest stage first
        let stages: Vec<VecStage<'_>> = nodes.iter().map(|n| VecStage::new(n)).collect();
        let meters: Vec<StageMeter> = stages.iter().map(|_| StageMeter::default()).collect();
        let counters = BatchMeter::default();
        let hist = lardb_obs::global().histogram("exec.batch.rows_per_batch");
        let trace = self.cluster.trace().cloned();
        let batch_rows = self.batch_rows;

        let morsels = self.cluster.morsel_map(child, |_, rows| {
            let mut out = Vec::with_capacity(rows.len());
            let mut scratch: Vec<Value> = Vec::new();
            for chunk in rows.chunks(batch_rows) {
                hist.observe(chunk.len() as u64);
                match run_vec_chunk(chunk, &stages, &meters, trace.as_ref(), &mut scratch)
                {
                    Ok(kept) => {
                        counters.ok_chunk(chunk.len());
                        out.extend(kept);
                    }
                    // Kernel declined: replay the whole chunk through the
                    // interpreter and take *its* result (or error).
                    Err(_) => {
                        counters.fallback();
                        interp_chunk_into(chunk, &stages, &meters, &mut scratch, &mut out)?;
                    }
                }
            }
            Ok(out)
        })?;
        let out = flatten_morsels(morsels);
        record_vec_stages(
            &stages,
            &meters,
            &counters,
            None,
            t0.elapsed(),
            out.iter().map(Vec::len).sum(),
            stats,
        );
        Ok(out)
    }

    /// Vectorized partial/complete aggregation: any Filter/Project chain
    /// under the aggregate fuses into its kernel, and group keys /
    /// aggregate inputs are themselves evaluated column-at-a-time. Each
    /// partition accumulates sequentially in ascending row order (chunks
    /// only batch the *expression work*), so group order and float
    /// accumulation order are independent of scheduler, worker count and
    /// batch size. Chunks a kernel declines replay through the interpreted
    /// transform chain into the same hash table, preserving order.
    fn run_vectorized_aggregate(
        &self,
        plan: &PhysicalPlan,
        input: &PhysicalPlan,
        group_by: &[Expr],
        aggs: &[AggExpr],
        mode: AggMode,
        stats: &mut ExecStats,
    ) -> Result<Parts> {
        let mut nodes: Vec<&PhysicalPlan> = Vec::new();
        let mut base = input;
        while let PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. } = base
        {
            nodes.push(base);
            base = input;
        }
        let child = self.run(base, stats)?;
        let t0 = Instant::now();
        nodes.reverse();
        let stages: Vec<VecStage<'_>> = nodes.iter().map(|n| VecStage::new(n)).collect();
        let meters: Vec<StageMeter> = stages.iter().map(|_| StageMeter::default()).collect();
        let agg_meter = StageMeter::default();
        let counters = BatchMeter::default();
        let key_progs: Vec<Program<'_>> = group_by.iter().map(Program::compile).collect();
        let arg_progs: Vec<Option<Program<'_>>> =
            aggs.iter().map(|a| a.arg.as_ref().map(Program::compile)).collect();
        let agg_kernels: u64 = key_progs.iter().map(Program::kernels).sum::<u64>()
            + arg_progs.iter().flatten().map(Program::kernels).sum::<u64>();
        let hist = lardb_obs::global().histogram("exec.batch.rows_per_batch");
        let trace = self.cluster.trace().cloned();
        let batch_rows = self.batch_rows;
        let cancel = self.cluster.cancel_token().clone();

        let partials = self.cluster.par_map(child, |_, rows| {
            let mut agg = GroupedAgg::new(group_by, aggs, mode);
            let mut scratch: Vec<Value> = Vec::new();
            let mut args_buf: Vec<Value> = Vec::with_capacity(aggs.len());
            for chunk in rows.chunks(batch_rows) {
                if cancel.is_cancelled() {
                    return Err(ExecError::Cancelled(
                        "vectorized aggregate cancelled".into(),
                    ));
                }
                hist.observe(chunk.len() as u64);
                // Evaluate everything *before* touching the hash table, so
                // a declined chunk can still fall back cleanly.
                match vec_agg_chunk(
                    chunk,
                    &stages,
                    &meters,
                    &key_progs,
                    &arg_progs,
                    trace.as_ref(),
                    &mut scratch,
                ) {
                    Ok(None) => counters.ok_chunk(chunk.len()), // filtered to nothing
                    Ok(Some((key_cols, arg_cols, sel, n))) => {
                        counters.ok_chunk(chunk.len());
                        let t = Instant::now();
                        let mut upd = |i: usize| -> Result<()> {
                            let kv: Vec<Value> =
                                key_cols.iter().map(|c| c.value_at(i)).collect();
                            args_buf.clear();
                            for c in &arg_cols {
                                args_buf.push(match c {
                                    Some(col) => col.value_at(i),
                                    None => Value::Integer(1), // COUNT(*)
                                });
                            }
                            agg.update_precomputed(kv, &args_buf)
                        };
                        // Ascending lanes: accumulation order matches the
                        // interpreter's row order exactly.
                        match &sel {
                            Some(s) => {
                                for &i in s {
                                    upd(i as usize)?;
                                }
                            }
                            None => {
                                for i in 0..n {
                                    upd(i)?;
                                }
                            }
                        }
                        agg_meter.add(t, agg_kernels, n as u64);
                    }
                    Err(_) => {
                        counters.fallback();
                        let mut kept = Vec::new();
                        interp_chunk_into(chunk, &stages, &meters, &mut scratch, &mut kept)?;
                        for row in &kept {
                            agg.update_row(row, &mut scratch)?;
                        }
                    }
                }
            }
            Ok(agg)
        })?;

        // Merge tail: identical to the interpreted arm (one table per
        // partition here, so the merge degenerates to finish()).
        let mut spill = SpillStats::default();
        let mut out = Vec::with_capacity(partials.len());
        if self.mem.bounded() && !group_by.is_empty() {
            for agg in partials {
                let (rows, sp) = merge_partials_spilling(
                    vec![agg],
                    group_by.len(),
                    aggs,
                    mode,
                    &self.mem,
                )?;
                spill.merge(sp);
                out.push(rows);
            }
        } else {
            for agg in partials {
                out.push(agg.finish());
            }
        }
        if group_by.is_empty()
            && matches!(mode, AggMode::Final | AggMode::Complete)
            && out.iter().all(Vec::is_empty)
        {
            out[0] = vec![empty_global_row(aggs)];
        }
        record_vec_stages(
            &stages,
            &meters,
            &counters,
            Some((plan, &agg_meter, spill)),
            t0.elapsed(),
            out.iter().map(Vec::len).sum(),
            stats,
        );
        Ok(out)
    }

    fn record(
        &self,
        plan: &PhysicalPlan,
        stats: &mut ExecStats,
        t0: Instant,
        out: &Parts,
        shuffle: ShuffleStats,
    ) {
        self.record_spill(plan, stats, t0, out, shuffle, SpillStats::default());
    }

    fn record_spill(
        &self,
        plan: &PhysicalPlan,
        stats: &mut ExecStats,
        t0: Instant,
        out: &Parts,
        shuffle: ShuffleStats,
        spill: SpillStats,
    ) {
        stats.record(OperatorStats {
            id: plan.id(),
            label: plan.label(),
            wall: t0.elapsed(),
            rows_out: out.iter().map(Vec::len).sum(),
            shuffle,
            spill,
            batch: BatchStats::default(),
        });
    }

    /// Scans a table, normalizing to the cluster's partition count. The
    /// cancel token is checked per partition (and periodically inside the
    /// re-deal loop), so a killed query stops copying rows promptly
    /// instead of materializing a large scan it will never use.
    fn scan(&self, table: &str) -> Result<Parts> {
        let cancel = self.cluster.cancel_token();
        let scan_cancelled = || ExecError::Cancelled("table scan cancelled".into());
        if cancel.is_cancelled() {
            return Err(scan_cancelled());
        }
        let w = self.cluster.workers();
        let handle = self.catalog.table(table)?;
        let t = handle.read();
        let replicated = matches!(t.partitioning(), Partitioning::Replicated);
        if replicated {
            // Every worker sees the same rows; `Row` is Arc-backed, so
            // the W copies share one attribute buffer per row instead of
            // materializing W deep copies of the table.
            let copy: Vec<Row> = t.partition(0).to_vec();
            return Ok((0..w).map(|_| copy.clone()).collect());
        }
        if t.num_partitions() == w {
            let mut out = Vec::with_capacity(w);
            for p in 0..w {
                if cancel.is_cancelled() {
                    return Err(scan_cancelled());
                }
                out.push(t.partition(p).to_vec());
            }
            return Ok(out);
        }
        // Partition-count mismatch: re-deal round-robin.
        let mut out = vec![Vec::new(); w];
        for (i, row) in t.iter_rows().enumerate() {
            if i % CANCEL_CHECK_PAIRS == 0 && cancel.is_cancelled() {
                return Err(scan_cancelled());
            }
            out[i % w].push(row.clone());
        }
        Ok(out)
    }

    /// Moves rows between partitions, metering the traffic.
    ///
    /// In `pointer` mode rows move as in-memory values and shuffle bytes
    /// are estimated from payload sizes. Under a serialized transport
    /// every boundary-crossing batch is codec-encoded, shipped through
    /// the worker mesh, and decoded on the receiving side; the meter then
    /// reports actual wire bytes and per-channel detail. Both paths
    /// produce bit-identical output in the same row order.
    fn exchange(
        &self,
        input: Parts,
        kind: &ExchangeKind,
        schema: &Schema,
    ) -> Result<(Parts, ShuffleStats)> {
        let w = input.len();
        // GatherReplica moves nothing, and a 1-worker cluster has no
        // partition boundary to cross — nothing to serialize.
        if self.mode.is_serialized() && w > 1 && !matches!(kind, ExchangeKind::GatherReplica) {
            return self.exchange_serialized(input, kind, schema);
        }
        match kind {
            ExchangeKind::Hash(keys) => {
                // Bucket row-range morsels in parallel, then merge the
                // per-morsel buckets in (partition, morsel) order — the
                // exact row order sequential per-partition routing gives.
                let bucketed = self.cluster.morsel_map(input, |p, rows| {
                    let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); w];
                    let mut moved_rows = 0;
                    let mut moved_bytes = 0;
                    let mut scratch = Vec::new();
                    for r in rows {
                        let target = hash_route(&r, keys, w, &mut scratch)?;
                        if target != p {
                            moved_rows += 1;
                            moved_bytes += r.byte_size();
                        }
                        buckets[target].push(r);
                    }
                    Ok((buckets, moved_rows, moved_bytes))
                })?;
                let mut out: Parts = vec![Vec::new(); w];
                let mut rows_moved = 0;
                let mut bytes_moved = 0;
                for (buckets, mr, mb) in bucketed.into_iter().flatten() {
                    rows_moved += mr;
                    bytes_moved += mb;
                    for (t, mut b) in buckets.into_iter().enumerate() {
                        out[t].append(&mut b);
                    }
                }
                Ok((out, ShuffleStats::estimated(rows_moved, bytes_moved)))
            }
            ExchangeKind::Broadcast => {
                let all: Vec<Row> = input.into_iter().flatten().collect();
                let bytes: usize = all.iter().map(Row::byte_size).sum();
                let rows = all.len();
                // Pointer mode: per-partition copies share row storage
                // (Arc clones); the metered bytes still reflect what a
                // real broadcast would ship.
                let out: Parts = (0..w).map(|_| all.clone()).collect();
                Ok((
                    out,
                    ShuffleStats::estimated(rows * (w - 1), bytes * (w.saturating_sub(1))),
                ))
            }
            ExchangeKind::Gather => {
                let mut rows_moved = 0;
                let mut bytes_moved = 0;
                let mut first = Vec::new();
                for (p, rows) in input.into_iter().enumerate() {
                    if p != 0 {
                        rows_moved += rows.len();
                        bytes_moved += rows.iter().map(Row::byte_size).sum::<usize>();
                    }
                    first.extend(rows);
                }
                let mut out: Parts = vec![Vec::new(); w];
                out[0] = first;
                Ok((out, ShuffleStats::estimated(rows_moved, bytes_moved)))
            }
            ExchangeKind::GatherReplica => {
                let mut out: Parts = vec![Vec::new(); w];
                if let Some(p0) = input.into_iter().next() {
                    out[0] = p0;
                }
                Ok((out, ShuffleStats::default()))
            }
        }
    }

    /// The serialized exchange: `W` sender threads route, encode and ship
    /// frames through a [`Mesh`]; `W` receiver threads drain, validate and
    /// decode them. Local rows (target == source) never touch the mesh.
    ///
    /// Receivers bucket incoming frames per sender and the final partition
    /// is assembled in sender order with local rows at the sender's own
    /// index — reproducing exactly the row order of the pointer-mode
    /// merge, so results are bit-identical across transports.
    fn exchange_serialized(
        &self,
        input: Parts,
        kind: &ExchangeKind,
        schema: &Schema,
    ) -> Result<(Parts, ShuffleStats)> {
        let w = input.len();
        let base: Box<dyn Transport> = match self.mode {
            TransportMode::Serialized => Box::new(ChannelTransport {
                max_frame_bytes: self.net.max_frame_bytes,
                ..ChannelTransport::default()
            }),
            TransportMode::Tcp => Box::new(TcpTransport {
                timeout_ms: self.net.timeout_ms,
                max_frame_bytes: self.net.max_frame_bytes,
                ..TcpTransport::default()
            }),
            TransportMode::Pointer => unreachable!("pointer mode uses the in-memory exchange"),
        };
        let transport: Box<dyn Transport> = match &self.net.faults {
            Some(plan) => Box::new(FaultyTransport::new(base, plan.clone())),
            None => base,
        };
        let mesh_box = transport.mesh(w)?;
        let mesh: &dyn Mesh = mesh_box.as_ref();
        let cancel = self.cluster.cancel_token();
        // When the query is traced, each sender leads every channel with a
        // trace frame carrying the trace id — receivers resolve it against
        // the flight recorder and attribute the channel to the query.
        let trace_id = self.cluster.trace().map(|t| t.id().0);

        type SenderOut = (Vec<Row>, Vec<ChannelStats>);
        type ScopeOut = (Vec<Vec<Row>>, Vec<Vec<Vec<Row>>>, Vec<ChannelStats>);
        let (locals, received, mut channels) = std::thread::scope(
            |s| -> Result<ScopeOut> {
                let receivers: Vec<_> = (0..w)
                    .map(|to| {
                        s.spawn(move || {
                            let r = receive_partition(mesh, w, to, schema, cancel);
                            if let Err(e) = &r {
                                flag_abort(cancel, e);
                            }
                            r
                        })
                    })
                    .collect();
                let senders: Vec<_> = input
                    .into_iter()
                    .enumerate()
                    .map(|(p, rows)| {
                        s.spawn(move || -> Result<SenderOut> {
                            let r =
                                send_partition(mesh, w, p, rows, kind, schema, cancel, trace_id);
                            if let Err(e) = &r {
                                flag_abort(cancel, e);
                            }
                            r
                        })
                    })
                    .collect();
                let mut locals = Vec::with_capacity(w);
                let mut channels = Vec::new();
                for h in senders {
                    let (local, chs) = join_exchange_thread(h)?;
                    locals.push(local);
                    channels.extend(chs);
                }
                let mut received = Vec::with_capacity(w);
                for h in receivers {
                    received.push(join_exchange_thread(h)?);
                }
                Ok((locals, received, channels))
            },
        )?;

        let mut out: Parts = Vec::with_capacity(w);
        for (q, (local, mut per_from)) in locals.into_iter().zip(received).enumerate() {
            let mut part = Vec::new();
            let mut local = Some(local);
            for (from, received_rows) in per_from.iter_mut().enumerate() {
                if from == q {
                    // `from == q` holds exactly once per outer iteration;
                    // a missing value is a logic bug, but surface it as a
                    // typed error rather than panicking the coordinator.
                    match local.take() {
                        Some(mut l) => part.append(&mut l),
                        None => {
                            return Err(ExecError::Runtime(
                                "exchange local rows consumed twice".into(),
                            ))
                        }
                    }
                } else {
                    part.append(received_rows);
                }
            }
            out.push(part);
        }
        channels.sort_by_key(|c| (c.from, c.to));
        Ok((out, ShuffleStats::from_channels(channels)))
    }
}

/// Joins one exchange worker thread, converting panics to errors.
fn join_exchange_thread<T>(h: std::thread::ScopedJoinHandle<'_, Result<T>>) -> Result<T> {
    h.join().unwrap_or_else(|payload| {
        lardb_obs::global().counter("exec.worker_panics").inc();
        Err(ExecError::Runtime(format!(
            "exchange thread panicked: {}",
            panic_message(payload.as_ref())
        )))
    })
}

/// Publishes one execution's totals into the process-wide metrics
/// registry: counters for plans run, rows/bytes shuffled and frames
/// encoded, plus an enqueue-block-time histogram (µs per exchange).
fn publish_metrics(stats: &ExecStats) {
    let registry = lardb_obs::global();
    registry.counter("exec.plans_run").inc();
    registry
        .counter("exec.rows_shuffled")
        .add(stats.total_rows_shuffled() as u64);
    registry
        .counter("exec.bytes_shuffled")
        .add(stats.total_bytes_shuffled() as u64);
    registry
        .counter("exec.frames_encoded")
        .add(stats.total_frames() as u64);
    let blocked = stats.total_enqueue_block();
    if blocked > Duration::ZERO {
        registry
            .histogram("exec.enqueue_block_us")
            .observe(blocked.as_micros() as u64);
    }
    // spill.files / spill.bytes_written / spill.bytes_read are fed by
    // lardb-buf as files are produced; per-query bucket counts land here.
    let buckets: usize = stats.operators().iter().map(|o| o.spill.partitions).sum();
    if buckets > 0 {
        registry.counter("spill.partitions").add(buckets as u64);
    }
    // Vectorized-engine totals. The rows-per-batch histogram is fed
    // inline as chunks run; the counters summarize per query here.
    let batches = stats.total_batches();
    let fallbacks = stats.total_fallbacks();
    if batches > 0 || fallbacks > 0 {
        registry.counter("exec.batch.batches").add(batches as u64);
        registry.counter("exec.batch.rows").add(stats.total_batch_rows() as u64);
        registry.counter("exec.batch.kernels").add(stats.total_kernels() as u64);
        registry.counter("exec.batch.fallbacks").add(fallbacks as u64);
    }
}

/// Sender side of one serialized exchange partition: routes rows, keeps
/// local ones, encodes and ships the rest (a schema frame first, then
/// row batches), and ends **every** channel with a fin frame carrying
/// the channel's frame count, row count and checksum (protocol v2) —
/// receivers prove completeness against it. The mesh endpoint always
/// ends — closed on success, *failed* on error — so receivers never hang
/// waiting for EOF and a partial stream is never mistaken for a full
/// one. Senders check the query's cancellation token between frames and
/// stop shuffling as soon as a sibling fails.
///
/// When `trace_id` is set the sender leads every channel with a trace
/// frame carrying the query's trace id. The frame is counted and
/// checksummed like any other pre-fin frame, so trace propagation rides
/// inside the completeness proof instead of beside it.
#[allow(clippy::too_many_arguments)]
fn send_partition(
    mesh: &dyn Mesh,
    w: usize,
    p: usize,
    rows: Vec<Row>,
    kind: &ExchangeKind,
    schema: &Schema,
    cancel: &CancelToken,
    trace_id: Option<u64>,
) -> Result<(Vec<Row>, Vec<ChannelStats>)> {
    let (local, outbound): (Vec<Row>, Vec<Vec<Row>>) = match kind {
        ExchangeKind::Hash(keys) => {
            let mut local = Vec::new();
            let mut outbound: Vec<Vec<Row>> = vec![Vec::new(); w];
            let mut scratch = Vec::new();
            for r in rows {
                let target = hash_route(&r, keys, w, &mut scratch)?;
                if target == p {
                    local.push(r);
                } else {
                    outbound[target].push(r);
                }
            }
            (local, outbound)
        }
        ExchangeKind::Broadcast => {
            let mut outbound: Vec<Vec<Row>> = vec![Vec::new(); w];
            for (q, slot) in outbound.iter_mut().enumerate() {
                if q != p {
                    *slot = rows.clone();
                }
            }
            (rows, outbound)
        }
        ExchangeKind::Gather => {
            if p == 0 {
                (rows, vec![Vec::new(); w])
            } else {
                let mut outbound: Vec<Vec<Row>> = vec![Vec::new(); w];
                outbound[0] = rows;
                (Vec::new(), outbound)
            }
        }
        ExchangeKind::GatherReplica => {
            unreachable!("GatherReplica never takes the serialized path")
        }
    };

    let mut channels = Vec::new();
    let send_result = (|| -> Result<()> {
        for (to, bucket) in outbound.iter().enumerate() {
            if to == p {
                continue; // never ship to self; local rows stay in-process
            }
            let mut fin = FinSummary { frames: 0, rows: 0, checksum: CHECKSUM_SEED };
            let mut ch = ChannelStats {
                from: p,
                to,
                rows: 0,
                bytes: 0,
                frames: 0,
                enqueue_block: Duration::ZERO,
            };
            if let Some(id) = trace_id {
                let trace_frame = encode_trace_frame(id);
                fin.frames += 1;
                fin.checksum = checksum_update(fin.checksum, &trace_frame);
                ch.bytes += trace_frame.len();
                ch.frames += 1;
                check_cancelled(cancel)?;
                let t = Instant::now();
                mesh.send(p, to, trace_frame)?;
                ch.enqueue_block += t.elapsed();
            }
            if !bucket.is_empty() {
                let schema_frame = encode_schema_frame(schema);
                fin.frames += 1;
                fin.checksum = checksum_update(fin.checksum, &schema_frame);
                ch.bytes += schema_frame.len();
                ch.frames += 1;
                check_cancelled(cancel)?;
                let t = Instant::now();
                mesh.send(p, to, schema_frame)?;
                ch.enqueue_block += t.elapsed();
                for chunk in bucket.chunks(ROWS_PER_FRAME) {
                    let frame = encode_rows_frame(chunk);
                    fin.frames += 1;
                    fin.rows += chunk.len() as u64;
                    fin.checksum = checksum_update(fin.checksum, &frame);
                    ch.rows += chunk.len();
                    ch.bytes += frame.len();
                    ch.frames += 1;
                    check_cancelled(cancel)?;
                    let t = Instant::now();
                    mesh.send(p, to, frame)?;
                    ch.enqueue_block += t.elapsed();
                }
            }
            // Protocol v2: EVERY channel ends with a fin — an empty one
            // proves "I really had nothing for you", so a dropped stream
            // can't masquerade as an empty stream.
            let fin_frame = encode_fin_frame(&fin);
            ch.bytes += fin_frame.len();
            ch.frames += 1;
            check_cancelled(cancel)?;
            let t = Instant::now();
            mesh.send(p, to, fin_frame)?;
            ch.enqueue_block += t.elapsed();
            if ch.rows > 0 {
                channels.push(ch);
            }
        }
        Ok(())
    })();
    match &send_result {
        // A clean close is only ever sent after every fin went out.
        Ok(()) => mesh.close(p)?,
        // On failure the endpoint ends abnormally: receivers see a
        // sender error, not EOF, and can never accept the partial stream.
        Err(e) => {
            let _ = mesh.fail(p, &e.to_string());
        }
    }
    send_result?;
    Ok((local, channels))
}

/// Returns [`ExecError::Cancelled`] once the query-wide token flips —
/// the exchange sender's fast-abort check, run before every frame.
fn check_cancelled(cancel: &CancelToken) -> Result<()> {
    if cancel.is_cancelled() {
        return Err(ExecError::Cancelled("exchange stopped: query aborted".into()));
    }
    Ok(())
}

/// Receiver side of one serialized exchange partition: drains the mesh
/// until every sender ends, validating that each channel leads with a
/// schema frame matching the exchange schema, and buckets decoded rows
/// per sender. On any error it keeps draining (so senders never block
/// forever against a full channel) and reports the first error.
///
/// Protocol v2 completeness proof: per channel the receiver counts
/// frames and rows and folds every frame's bytes into a running
/// checksum; the sender's fin frame must arrive and match all three.
/// A missing fin (channel ended early), a mismatching fin (frames lost
/// or mangled in flight), or an abnormal channel end all surface as
/// errors and bump `exchange.truncations_detected` — a dead worker can
/// shorten the answer *only* into an error, never silently.
fn receive_partition(
    mesh: &dyn Mesh,
    w: usize,
    to: usize,
    schema: &Schema,
    cancel: &CancelToken,
) -> Result<Vec<Vec<Row>>> {
    /// Per-sender channel bookkeeping.
    #[derive(Default)]
    struct ChannelRecv {
        frames: u64,
        rows: u64,
        checksum: u64,
        fin: Option<FinSummary>,
        errored: bool,
        /// Trace id propagated by the sender's leading trace frame.
        trace_id: Option<u64>,
    }
    let recv_start = Instant::now();
    let truncation = |from: usize, what: String| -> ExecError {
        lardb_obs::global().counter("exchange.truncations_detected").inc();
        ExecError::Runtime(format!("exchange channel {from}→{to} truncated: {what}"))
    };

    let mut per_from: Vec<Vec<Row>> = vec![Vec::new(); w];
    let mut schema_seen = vec![false; w];
    let mut chans: Vec<ChannelRecv> = (0..w)
        .map(|_| ChannelRecv { checksum: CHECKSUM_SEED, ..ChannelRecv::default() })
        .collect();
    let mut first_err: Option<ExecError> = None;
    let record_err = |e: ExecError, first_err: &mut Option<ExecError>| {
        if first_err.is_none() {
            *first_err = Some(e);
        }
    };
    loop {
        match mesh.recv(to) {
            Ok(Some((from, frame))) => {
                if first_err.is_some() {
                    continue; // drain to EOF so senders don't deadlock
                }
                let chan = &mut chans[from];
                match decode_frame(&frame) {
                    Ok(Frame::Fin(fin)) => {
                        if chan.fin.is_some() {
                            record_err(
                                truncation(from, "second fin frame".into()),
                                &mut first_err,
                            );
                            continue;
                        }
                        chan.fin = Some(fin);
                        if fin.frames != chan.frames
                            || fin.rows != chan.rows
                            || fin.checksum != chan.checksum
                        {
                            record_err(
                                truncation(
                                    from,
                                    format!(
                                        "sender shipped {} frames / {} rows, receiver saw {} / {} \
                                         (checksum {})",
                                        fin.frames,
                                        fin.rows,
                                        chan.frames,
                                        chan.rows,
                                        if fin.checksum == chan.checksum {
                                            "ok"
                                        } else {
                                            "MISMATCH"
                                        },
                                    ),
                                ),
                                &mut first_err,
                            );
                        }
                    }
                    other => {
                        if chan.fin.is_some() {
                            record_err(
                                truncation(from, "frame after fin".into()),
                                &mut first_err,
                            );
                            continue;
                        }
                        chan.frames += 1;
                        chan.checksum = checksum_update(chan.checksum, &frame);
                        match other {
                            Ok(Frame::Schema(s)) => {
                                if s == *schema {
                                    schema_seen[from] = true;
                                } else {
                                    record_err(
                                        ExecError::Runtime(format!(
                                            "exchange schema mismatch from worker {from}"
                                        )),
                                        &mut first_err,
                                    );
                                }
                            }
                            Ok(Frame::Rows(rows)) => {
                                if schema_seen[from] {
                                    chan.rows += rows.len() as u64;
                                    per_from[from].extend(rows);
                                } else {
                                    record_err(
                                        ExecError::Runtime(format!(
                                            "rows frame before schema frame from worker {from}"
                                        )),
                                        &mut first_err,
                                    );
                                }
                            }
                            Ok(Frame::Trace(id)) => {
                                // Wire-propagated trace context: remember
                                // which query this channel belongs to; the
                                // exchange span is recorded once the
                                // channel completes.
                                chan.trace_id = Some(id);
                            }
                            Ok(Frame::Fin(_)) => unreachable!("handled above"),
                            Err(e) => {
                                record_err(NetError::from(e).into(), &mut first_err)
                            }
                        }
                    }
                }
            }
            Ok(None) => break,
            Err(NetError::Sender { from, reason }) => {
                // One channel died; its stream is untrustworthy, but the
                // rest must still be drained so no sender deadlocks.
                chans[from].errored = true;
                record_err(
                    truncation(from, format!("channel ended abnormally: {reason}")),
                    &mut first_err,
                );
            }
            Err(e) => {
                // The whole inbox is gone — nothing left to drain.
                record_err(e.into(), &mut first_err);
                break;
            }
        }
    }
    // End of stream: every remote channel must have proven completeness.
    for (from, chan) in chans.iter().enumerate() {
        if from == to || chan.errored || first_err.is_some() {
            continue;
        }
        if chan.fin.is_none() {
            record_err(
                truncation(from, "channel closed without a fin frame".into()),
                &mut first_err,
            );
        }
    }
    // Attribute completed channels to their query: resolve each
    // wire-propagated trace id against the flight recorder and record an
    // exchange span on the owning trace. Only ids that resolve to a query
    // still in flight attach — a stale id is silently dropped.
    for (from, chan) in chans.iter().enumerate() {
        let Some(id) = chan.trace_id else { continue };
        if let Some(t) = lardb_obs::recorder().lookup(id) {
            t.record(
                "exchange",
                "exchange",
                recv_start,
                recv_start.elapsed(),
                vec![
                    ("from", from.to_string()),
                    ("to", to.to_string()),
                    ("trace_id", format!("{id:016x}")),
                    ("rows", chan.rows.to_string()),
                    ("frames", chan.frames.to_string()),
                ],
            );
        }
    }
    match first_err {
        Some(e) => {
            // Fast abort: tell every sibling to stop shuffling data this
            // query will never use.
            flag_abort(cancel, &e);
            Err(e)
        }
        None => Ok(per_from),
    }
}

/// A row-level transform between a join and a fused aggregate.
enum RowTransform<'p> {
    /// Projection through these expressions.
    Project(&'p [Expr]),
    /// Keep rows passing this predicate.
    Filter(&'p Expr),
}

/// Walks down a Project/Filter chain to a join, if one is there.
/// Transforms are returned top-down; apply them bottom-up.
fn peel_fusable(plan: &PhysicalPlan) -> Option<(Vec<RowTransform<'_>>, &PhysicalPlan)> {
    let mut transforms = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            PhysicalPlan::Project { input, exprs, .. } => {
                transforms.push(RowTransform::Project(exprs));
                cur = input;
            }
            PhysicalPlan::Filter { input, predicate, .. } => {
                transforms.push(RowTransform::Filter(predicate));
                cur = input;
            }
            PhysicalPlan::HashJoin { .. } | PhysicalPlan::NestedLoopJoin { .. } => {
                return Some((transforms, cur))
            }
            _ => return None,
        }
    }
}

/// Applies a transform chain (bottom-up) to one row; `None` = filtered out.
fn apply_transforms(
    mut row: Row,
    transforms: &[RowTransform<'_>],
    scratch: &mut Vec<Value>,
) -> Result<Option<Row>> {
    for t in transforms.iter().rev() {
        match t {
            RowTransform::Filter(p) => {
                if !eval_predicate_with(p, &row, scratch)? {
                    return Ok(None);
                }
            }
            RowTransform::Project(exprs) => {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in *exprs {
                    vals.push(eval_with(e, &row, scratch)?);
                }
                row = Row::new(vals);
            }
        }
    }
    Ok(Some(row))
}

/// One stage of a vectorized Filter/Project chain: the original
/// expressions (for interpreter replay) plus their compiled bytecode.
struct VecStage<'p> {
    id: usize,
    label: String,
    /// Kernel invocations one chunk of this stage costs (feeds the
    /// `exec.batch.kernels` counter exactly, per executed chunk).
    kernels: u64,
    kind: VecStageKind<'p>,
}

enum VecStageKind<'p> {
    Filter { pred: &'p Expr, prog: Program<'p> },
    Project { exprs: &'p [Expr], progs: Vec<Program<'p>> },
}

impl<'p> VecStage<'p> {
    fn new(node: &'p PhysicalPlan) -> VecStage<'p> {
        match node {
            PhysicalPlan::Filter { predicate, .. } => {
                let prog = Program::compile(predicate);
                VecStage {
                    id: node.id(),
                    label: node.label(),
                    // +1 for the selection-vector pass itself.
                    kernels: prog.kernels() + 1,
                    kind: VecStageKind::Filter { pred: predicate, prog },
                }
            }
            PhysicalPlan::Project { exprs, .. } => {
                let progs: Vec<Program<'p>> =
                    exprs.iter().map(Program::compile).collect();
                VecStage {
                    id: node.id(),
                    label: node.label(),
                    kernels: progs.iter().map(Program::kernels).sum(),
                    kind: VecStageKind::Project { exprs, progs },
                }
            }
            other => unreachable!("not a vectorizable stage: {}", other.label()),
        }
    }
}

/// Per-stage meters shared across morsel workers (kernel wall time, rows
/// surviving the stage, kernel invocations).
#[derive(Default)]
struct StageMeter {
    ns: AtomicU64,
    rows_out: AtomicU64,
    kernels: AtomicU64,
}

impl StageMeter {
    fn add(&self, t: Instant, kernels: u64, rows: u64) {
        self.ns.fetch_add(t.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);
        self.kernels.fetch_add(kernels, AtomicOrdering::Relaxed);
        self.rows_out.fetch_add(rows, AtomicOrdering::Relaxed);
    }
}

/// Batch / fallback counters for one vectorized operator chain.
#[derive(Default)]
struct BatchMeter {
    batches: AtomicU64,
    rows: AtomicU64,
    fallbacks: AtomicU64,
}

impl BatchMeter {
    fn ok_chunk(&self, rows: usize) {
        self.batches.fetch_add(1, AtomicOrdering::Relaxed);
        self.rows.fetch_add(rows as u64, AtomicOrdering::Relaxed);
    }

    fn fallback(&self) {
        self.fallbacks.fetch_add(1, AtomicOrdering::Relaxed);
    }
}

/// Columns, selection vector, whether a projection replaced the input
/// columns, and the chunk's lane count.
type VecChunkState = (Vec<Arc<Col>>, Option<Vec<u32>>, bool, usize);

/// Runs every chain stage over one pivoted chunk. Any `Err` means
/// "replay this chunk through the row interpreter" — never a final query
/// error. An empty selection short-circuits the remaining stages (the
/// interpreter would not evaluate them on zero rows either).
fn run_vec_stages(
    chunk: &[Row],
    stages: &[VecStage<'_>],
    meters: &[StageMeter],
    trace: Option<&Arc<lardb_obs::ActiveTrace>>,
    scratch: &mut Vec<Value>,
) -> Result<VecChunkState> {
    let n = chunk.len();
    let batch = ColumnBatch::from_rows(chunk)
        .ok_or_else(|| ExecError::Runtime("ragged rows cannot be pivoted".into()))?;
    let mut cols: Vec<Arc<Col>> = batch.cols().to_vec();
    let mut sel: Option<Vec<u32>> = None;
    let mut projected = false;
    for (stage, m) in stages.iter().zip(meters) {
        let _span =
            trace.map(|t| t.span("kernel", "vec").arg("op", stage.label.clone()));
        let t = Instant::now();
        match &stage.kind {
            VecStageKind::Filter { prog, .. } => {
                let pred = prog.eval(&cols, n, sel.as_deref(), scratch)?;
                sel = Some(kernels::selection(&pred, sel.as_deref(), n)?);
            }
            VecStageKind::Project { progs, .. } => {
                let mut outs = Vec::with_capacity(progs.len());
                for p in progs {
                    outs.push(p.eval(&cols, n, sel.as_deref(), scratch)?);
                }
                cols = outs;
                projected = true;
            }
        }
        let live = sel.as_ref().map_or(n, Vec::len);
        m.add(t, stage.kernels, live as u64);
        if live == 0 {
            break;
        }
    }
    Ok((cols, sel, projected, n))
}

/// One chunk through the whole chain, rows out. Pass-through lanes reuse
/// the input rows (`Arc` clones); only projected chunks rebuild rows.
fn run_vec_chunk(
    chunk: &[Row],
    stages: &[VecStage<'_>],
    meters: &[StageMeter],
    trace: Option<&Arc<lardb_obs::ActiveTrace>>,
    scratch: &mut Vec<Value>,
) -> Result<Vec<Row>> {
    let (cols, sel, projected, n) = run_vec_stages(chunk, stages, meters, trace, scratch)?;
    Ok(match (projected, sel) {
        (false, None) => chunk.to_vec(),
        (false, Some(s)) => s.iter().map(|&i| chunk[i as usize].clone()).collect(),
        (true, None) => (0..n)
            .map(|i| Row::new(cols.iter().map(|c| c.value_at(i)).collect()))
            .collect(),
        (true, Some(s)) => s
            .iter()
            .map(|&i| Row::new(cols.iter().map(|c| c.value_at(i as usize)).collect()))
            .collect(),
    })
}

/// Chain stages plus group-key / aggregate-argument programs over one
/// chunk, with *no* side effects — the caller only touches its hash table
/// once everything evaluated cleanly, so a declined chunk can still fall
/// back to the interpreter. `None` = the chunk filtered down to nothing.
#[allow(clippy::type_complexity)]
fn vec_agg_chunk<'p>(
    chunk: &[Row],
    stages: &[VecStage<'p>],
    meters: &[StageMeter],
    key_progs: &[Program<'p>],
    arg_progs: &[Option<Program<'p>>],
    trace: Option<&Arc<lardb_obs::ActiveTrace>>,
    scratch: &mut Vec<Value>,
) -> Result<Option<(Vec<Arc<Col>>, Vec<Option<Arc<Col>>>, Option<Vec<u32>>, usize)>> {
    let (cols, sel, _projected, n) = run_vec_stages(chunk, stages, meters, trace, scratch)?;
    if n == 0 || sel.as_ref().is_some_and(Vec::is_empty) {
        return Ok(None);
    }
    let s = sel.as_deref();
    let key_cols = key_progs
        .iter()
        .map(|p| p.eval(&cols, n, s, scratch))
        .collect::<Result<Vec<_>>>()?;
    let arg_cols = arg_progs
        .iter()
        .map(|p| p.as_ref().map(|p| p.eval(&cols, n, s, scratch)).transpose())
        .collect::<Result<Vec<_>>>()?;
    Ok(Some((key_cols, arg_cols, sel, n)))
}

/// Replays one chunk through the interpreted chain, row at a time,
/// appending survivors to `out`. This is the fallback the vectorized path
/// takes when a kernel declines a chunk: the interpreter's verdict —
/// values or error — is authoritative, which is what makes the two
/// engines agree by construction.
fn interp_chunk_into(
    chunk: &[Row],
    stages: &[VecStage<'_>],
    meters: &[StageMeter],
    scratch: &mut Vec<Value>,
    out: &mut Vec<Row>,
) -> Result<()> {
    'row: for r in chunk {
        let mut row = r.clone();
        for (stage, m) in stages.iter().zip(meters) {
            match &stage.kind {
                VecStageKind::Filter { pred, .. } => {
                    if !eval_predicate_with(pred, &row, scratch)? {
                        continue 'row;
                    }
                }
                VecStageKind::Project { exprs, .. } => {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in *exprs {
                        vals.push(eval_with(e, &row, scratch)?);
                    }
                    row = Row::new(vals);
                }
            }
            m.rows_out.fetch_add(1, AtomicOrdering::Relaxed);
        }
        out.push(row);
    }
    Ok(())
}

/// Records a vectorized chain's per-operator stats. The chain's measured
/// wall time is split across stages proportionally to their metered
/// kernel time (the last operator absorbs the remainder — pivot,
/// materialize, fallback replay), batch counters land on the chain's top
/// operator, and labels get a ` [vec]` / ` [vec fused]` *suffix* so
/// label-prefix bucketing (the Figure 4 breakdown) still matches.
fn record_vec_stages(
    stages: &[VecStage<'_>],
    meters: &[StageMeter],
    counters: &BatchMeter,
    agg: Option<(&PhysicalPlan, &StageMeter, SpillStats)>,
    total: Duration,
    rows_out_total: usize,
    stats: &mut ExecStats,
) {
    let relaxed = AtomicOrdering::Relaxed;
    let n_ops = stages.len() + usize::from(agg.is_some());
    let suffix = if n_ops > 1 { " [vec fused]" } else { " [vec]" };
    let mut ns: Vec<u64> = meters.iter().map(|m| m.ns.load(relaxed)).collect();
    if let Some((_, am, _)) = &agg {
        ns.push(am.ns.load(relaxed));
    }
    let sum = ns.iter().sum::<u64>().max(1);
    let top_counters = BatchStats {
        batches: counters.batches.load(relaxed) as usize,
        rows: counters.rows.load(relaxed) as usize,
        kernels: 0,
        fallbacks: counters.fallbacks.load(relaxed) as usize,
    };
    let mut spent = Duration::ZERO;
    for (i, (stage, m)) in stages.iter().zip(meters).enumerate() {
        let top = i == n_ops - 1;
        let wall = if top {
            total.saturating_sub(spent)
        } else {
            Duration::from_nanos(
                (total.as_nanos() * ns[i] as u128 / sum as u128) as u64,
            )
        };
        spent += wall;
        let kernels = m.kernels.load(relaxed) as usize;
        let (batch, rows_out) = if top {
            (BatchStats { kernels, ..top_counters }, rows_out_total)
        } else {
            (
                BatchStats { kernels, ..BatchStats::default() },
                m.rows_out.load(relaxed) as usize,
            )
        };
        stats.record(OperatorStats {
            id: stage.id,
            label: format!("{}{}", stage.label, suffix),
            wall,
            rows_out,
            shuffle: ShuffleStats::default(),
            spill: SpillStats::default(),
            batch,
        });
    }
    if let Some((plan, am, spill)) = agg {
        stats.record(OperatorStats {
            id: plan.id(),
            label: format!("{}{}", plan.label(), suffix),
            wall: total.saturating_sub(spent),
            rows_out: rows_out_total,
            shuffle: ShuffleStats::default(),
            spill,
            batch: BatchStats {
                kernels: am.kernels.load(relaxed) as usize,
                ..top_counters
            },
        });
    }
}

/// Adds the elapsed time since `t` to `acc` (nanoseconds; u64 covers
/// 500+ years, no overflow concern).
fn add_elapsed(acc: &mut u64, t: Instant) {
    *acc += t.elapsed().as_nanos() as u64;
}

/// Routes a row to a partition by hashing its key expressions. Single-key
/// routing matches the storage layer's [`hash_partition`] so that tables
/// hash-partitioned at load time co-locate with exchanged streams.
fn hash_route(
    row: &Row,
    keys: &[Expr],
    w: usize,
    scratch: &mut Vec<Value>,
) -> Result<usize> {
    if keys.len() == 1 {
        let v = eval_with(&keys[0], row, scratch)?;
        return Ok(hash_partition(&v, w));
    }
    let mut vals = Vec::with_capacity(keys.len());
    for k in keys {
        vals.push(eval_with(k, row, scratch)?);
    }
    let key = CompositeKey::from_values(vals);
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    Ok((h.finish() % w as u64) as usize)
}

/// Concatenates each partition's morsel outputs (already in row order).
fn flatten_morsels(morsels: Vec<Vec<Vec<Row>>>) -> Parts {
    morsels.into_iter().map(|ms| ms.into_iter().flatten().collect()).collect()
}

/// Hash-join build phase: one partition's build side keyed for probing.
fn build_join_table(
    left: Vec<Row>,
    left_keys: &[Expr],
) -> Result<HashMap<CompositeKey, Vec<Row>>> {
    let mut table: HashMap<CompositeKey, Vec<Row>> = HashMap::with_capacity(left.len());
    let mut scratch = Vec::new();
    'left: for r in left {
        let mut vals = Vec::with_capacity(left_keys.len());
        for k in left_keys {
            let v = eval_with(k, &r, &mut scratch)?;
            if v.is_null() {
                continue 'left; // NULL never joins
            }
            vals.push(v);
        }
        table.entry(CompositeKey::from_values(vals)).or_default().push(r);
    }
    Ok(table)
}

/// Hash-join probe phase over any row range of the probe side; reads the
/// build table, emitting joined rows in probe-row order.
fn probe_join_table(
    table: &HashMap<CompositeKey, Vec<Row>>,
    right: Vec<Row>,
    right_keys: &[Expr],
    residual: Option<&Expr>,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    'right: for r in right {
        let mut vals = Vec::with_capacity(right_keys.len());
        for k in right_keys {
            let v = eval_with(k, &r, &mut scratch)?;
            if v.is_null() {
                continue 'right;
            }
            vals.push(v);
        }
        if let Some(matches) = table.get(&CompositeKey::from_values(vals)) {
            for l in matches {
                let joined = l.concat(&r);
                if let Some(res) = residual {
                    if !eval_predicate_with(res, &joined, &mut scratch)? {
                        continue;
                    }
                }
                out.push(joined);
            }
        }
    }
    Ok(out)
}

/// A prepared hash-join build partition: resident (holding its memory
/// reservation for the probe's duration) or spilled to hashed bucket files.
enum BuildSide {
    InMem {
        table: HashMap<CompositeKey, Vec<Row>>,
        _res: MemoryReservation,
    },
    Spilled { buckets: Vec<SpillFile> },
}

/// Bytes a materialized row set is charged against the governor: payload
/// bytes plus per-row container overhead (Arc + Vec headers).
fn rows_footprint(rows: &[Row]) -> u64 {
    rows.iter().map(|r| r.byte_size() as u64 + 48).sum()
}

/// The composite join key of `row`, or `None` when any key column is NULL
/// (NULL never joins).
fn join_key(row: &Row, keys: &[Expr]) -> Result<Option<CompositeKey>> {
    let mut vals = Vec::with_capacity(keys.len());
    for k in keys {
        let v = eval(k, row)?;
        if v.is_null() {
            return Ok(None);
        }
        vals.push(v);
    }
    Ok(Some(CompositeKey::from_values(vals)))
}

/// Spill bucket for a key at a recursion level. The level salts the hash so
/// every recursion re-partitions differently (and differently from the
/// worker routing in `hash_route`, which uses the unsalted key hash — the
/// very hash that put all these rows in one partition).
fn bucket_of(key: &CompositeKey, level: usize, fanout: usize) -> usize {
    let mut h = DefaultHasher::new();
    (0xB0F1_5EEDu64 ^ (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).hash(&mut h);
    key.hash(&mut h);
    (h.finish() % fanout as u64) as usize
}

/// Fans a build side out into [`SPILL_FANOUT`] hashed bucket files at the
/// given recursion level, preserving relative row order within each bucket
/// (what keeps grace output bit-identical to the in-memory join). NULL-key
/// rows are dropped here — they can never join.
fn spill_build_buckets(
    rows: Vec<Row>,
    keys: &[Expr],
    mem: &MemoryConfig,
    level: usize,
    spill: &mut SpillStats,
) -> Result<Vec<SpillFile>> {
    let fanout = SPILL_FANOUT;
    let mut writers = Vec::with_capacity(fanout);
    for b in 0..fanout {
        writers.push(SpillWriter::create(
            mem.spill_dir(),
            &format!("join-l{level}-b{b}"),
        )?);
    }
    spill.partitions += fanout;
    let mut bufs: Vec<Vec<Row>> = vec![Vec::new(); fanout];
    for r in rows {
        let Some(key) = join_key(&r, keys)? else { continue };
        let b = bucket_of(&key, level, fanout);
        bufs[b].push(r);
        if bufs[b].len() >= ROWS_PER_FRAME {
            writers[b].write_rows(&bufs[b])?;
            bufs[b].clear();
        }
    }
    let mut files = Vec::with_capacity(fanout);
    for (mut w, buf) in writers.into_iter().zip(bufs) {
        if !buf.is_empty() {
            w.write_rows(&buf)?;
        }
        let f = w.finish()?;
        spill.files += 1;
        spill.bytes_written += f.bytes() as usize;
        files.push(f);
    }
    Ok(files)
}

/// Joins one spilled partition: probe rows are tagged with their original
/// position, routed to the build's buckets, joined bucket-by-bucket
/// (recursing while a bucket still exceeds the budget), and the output
/// restored to exact probe order.
fn grace_join_partition(
    buckets: Vec<SpillFile>,
    probe: Vec<Row>,
    left_keys: &[Expr],
    right_keys: &[Expr],
    residual: Option<&Expr>,
    mem: &MemoryConfig,
) -> Result<(Vec<Row>, SpillStats)> {
    let mut spill = SpillStats::default();
    let fanout = buckets.len();
    let mut probe_buckets: Vec<Vec<(usize, Row)>> = vec![Vec::new(); fanout];
    for (i, r) in probe.into_iter().enumerate() {
        if let Some(key) = join_key(&r, right_keys)? {
            probe_buckets[bucket_of(&key, 0, fanout)].push((i, r));
        }
    }
    let mut tagged: Vec<(usize, Row)> = Vec::new();
    for (file, probes) in buckets.into_iter().zip(probe_buckets) {
        grace_bucket(
            file, probes, left_keys, right_keys, residual, mem, 1, &mut tagged, &mut spill,
        )?;
    }
    // Stable sort: a probe row's multiple matches keep their build order.
    tagged.sort_by_key(|&(i, _)| i);
    Ok((tagged.into_iter().map(|(_, r)| r).collect(), spill))
}

/// Joins one grace bucket, re-partitioning recursively while the bucket's
/// build rows exceed the budget. `level` is the salt the *next* spill
/// level would use.
#[allow(clippy::too_many_arguments)]
fn grace_bucket(
    file: SpillFile,
    probes: Vec<(usize, Row)>,
    left_keys: &[Expr],
    right_keys: &[Expr],
    residual: Option<&Expr>,
    mem: &MemoryConfig,
    level: usize,
    out: &mut Vec<(usize, Row)>,
    spill: &mut SpillStats,
) -> Result<()> {
    if file.rows() == 0 || probes.is_empty() {
        return Ok(()); // no matches possible; the file is deleted on drop
    }
    let rows = file.read_rows()?;
    spill.bytes_read += file.bytes() as usize;
    drop(file); // delete before building: halves peak disk usage
    let footprint = rows_footprint(&rows);
    let _res = match mem.governor().try_reserve(footprint) {
        Some(res) => res,
        None if level < MAX_SPILL_DEPTH => {
            // Still too big: re-partition under the next level's salt.
            let sub = spill_build_buckets(rows, left_keys, mem, level, spill)?;
            let fanout = sub.len();
            let mut sub_probes: Vec<Vec<(usize, Row)>> = vec![Vec::new(); fanout];
            for (i, r) in probes {
                if let Some(key) = join_key(&r, right_keys)? {
                    sub_probes[bucket_of(&key, level, fanout)].push((i, r));
                }
            }
            for (f, ps) in sub.into_iter().zip(sub_probes) {
                grace_bucket(
                    f, ps, left_keys, right_keys, residual, mem, level + 1, out, spill,
                )?;
            }
            return Ok(());
        }
        // Recursion floor: a duplicate-heavy key set that re-partitioning
        // cannot shrink. Overcommit and finish rather than loop forever.
        None => mem.governor().force_reserve(footprint),
    };
    let table = build_join_table(rows, left_keys)?;
    let mut scratch = Vec::new();
    'probe: for (i, r) in probes {
        let mut vals = Vec::with_capacity(right_keys.len());
        for k in right_keys {
            let v = eval_with(k, &r, &mut scratch)?;
            if v.is_null() {
                continue 'probe;
            }
            vals.push(v);
        }
        if let Some(matches) = table.get(&CompositeKey::from_values(vals)) {
            for l in matches {
                let joined = l.concat(&r);
                if let Some(res) = residual {
                    if !eval_predicate_with(res, &joined, &mut scratch)? {
                        continue;
                    }
                }
                out.push((i, joined));
            }
        }
    }
    Ok(())
}

/// A grouped-aggregation hash table, usable both batch-at-a-time and
/// streamed (the fused join→aggregate path feeds it row by row).
struct GroupedAgg<'a> {
    group_by: &'a [Expr],
    aggs: &'a [AggExpr],
    mode: AggMode,
    groups: HashMap<CompositeKey, usize>,
    key_vals: Vec<Vec<Value>>,
    accs: Vec<Vec<Accumulator>>,
}

impl<'a> GroupedAgg<'a> {
    fn new(group_by: &'a [Expr], aggs: &'a [AggExpr], mode: AggMode) -> Self {
        GroupedAgg {
            group_by,
            aggs,
            mode,
            groups: HashMap::new(),
            key_vals: Vec::new(),
            accs: Vec::new(),
        }
    }

    /// Index of the group keyed by `kv`, creating it (in first-seen
    /// order) when new.
    fn group_index(&mut self, kv: Vec<Value>) -> usize {
        let key = CompositeKey::from_values(kv.clone());
        match self.groups.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.accs.len();
                self.groups.insert(key, i);
                self.key_vals.push(kv);
                self.accs
                    .push(self.aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                i
            }
        }
    }

    fn update_row(&mut self, row: &Row, scratch: &mut Vec<Value>) -> Result<()> {
        let mut kv = Vec::with_capacity(self.group_by.len());
        for g in self.group_by {
            kv.push(eval_with(g, row, scratch)?);
        }
        let idx = self.group_index(kv);
        match self.mode {
            AggMode::Partial | AggMode::Complete => {
                for (a, acc) in self.aggs.iter().zip(self.accs[idx].iter_mut()) {
                    match &a.arg {
                        Some(e) => acc.update(&eval_with(e, row, scratch)?)?,
                        None => acc.update(&Value::Integer(1))?, // COUNT(*)
                    }
                }
            }
            AggMode::Final => {
                // Row layout: [group cols][state cols per agg].
                let mut off = self.group_by.len();
                for (a, acc) in self.aggs.iter().zip(self.accs[idx].iter_mut()) {
                    let n = state_arity(a.func);
                    let state = row.values().get(off..off + n).ok_or_else(|| {
                        ExecError::Runtime(format!(
                            "partial row arity {} too short for state columns at {off}..{}",
                            row.arity(),
                            off + n
                        ))
                    })?;
                    acc.merge_state(state)?;
                    off += n;
                }
                if off != row.arity() {
                    return Err(ExecError::Runtime(format!(
                        "partial row arity {} does not match states ({off})",
                        row.arity()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Streamed update with pre-evaluated group keys and aggregate
    /// arguments (the vectorized path computes both column-at-a-time).
    /// Must receive exactly the values [`Self::update_row`] would have
    /// computed, in the same row order; Partial/Complete modes only.
    fn update_precomputed(&mut self, kv: Vec<Value>, args: &[Value]) -> Result<()> {
        let idx = self.group_index(kv);
        for (acc, v) in self.accs[idx].iter_mut().zip(args) {
            acc.update(v)?;
        }
        Ok(())
    }

    /// Folds another aggregation table (e.g. a later morsel's partial
    /// result) into this one by merging accumulator states. `other`'s
    /// groups arrive in its first-seen order, so folding partials in
    /// ascending morsel order yields a deterministic group order.
    fn merge(&mut self, other: GroupedAgg<'a>) -> Result<()> {
        for (kv, accs) in other.key_vals.into_iter().zip(other.accs) {
            let idx = self.group_index(kv);
            for (mine, theirs) in self.accs[idx].iter_mut().zip(accs) {
                mine.merge_state(&theirs.state())?;
            }
        }
        Ok(())
    }

    /// Approximate heap bytes of this table's state (group keys +
    /// accumulator payloads + per-group bookkeeping), as charged against
    /// the memory governor by the spilling merge.
    fn state_bytes(&self) -> usize {
        let keys: usize = self
            .key_vals
            .iter()
            .map(|kv| kv.iter().map(Value::byte_size).sum::<usize>())
            .sum();
        let states: usize = self
            .accs
            .iter()
            .map(|group| group.iter().map(Accumulator::state_bytes).sum::<usize>())
            .sum();
        keys + states + self.accs.len() * 64
    }

    /// Consumes the table into `[group cols][state cols]` rows in
    /// first-seen order — the same layout `AggMode::Final` consumes, and
    /// what the spilling merge writes to its bucket files.
    fn into_state_rows(self) -> Vec<Row> {
        self.key_vals
            .into_iter()
            .zip(self.accs)
            .map(|(kv, accs)| {
                let mut vals = kv;
                for a in accs {
                    vals.extend(a.state());
                }
                Row::new(vals)
            })
            .collect()
    }

    /// Emits groups in first-seen order.
    fn finish(self) -> Vec<Row> {
        let mode = self.mode;
        let mut out = Vec::with_capacity(self.accs.len());
        for (kv, group_accs) in self.key_vals.into_iter().zip(self.accs) {
            let mut vals = kv;
            for acc in group_accs {
                match mode {
                    AggMode::Partial => vals.extend(acc.state()),
                    AggMode::Final | AggMode::Complete => vals.push(acc.finish()),
                }
            }
            out.push(Row::new(vals));
        }
        out
    }
}

/// Merges one partition's per-morsel aggregation tables (ascending
/// morsel order) into that partition's output rows. A merge via
/// accumulator *states* is mode-agnostic, so this works for Partial,
/// Final, and Complete aggregates alike; with a single morsel — every
/// small input — it degenerates to exactly the sequential computation.
fn merge_partials(partials: Vec<GroupedAgg<'_>>) -> Result<Vec<Row>> {
    let mut it = partials.into_iter();
    let mut first = match it.next() {
        Some(p) => p,
        None => return Ok(Vec::new()),
    };
    for p in it {
        first.merge(p)?;
    }
    Ok(first.finish())
}

/// [`merge_partials`] under a memory budget. While the governor lets the
/// merged table's reservation grow this IS the in-memory merge. On the
/// first denial the merged prefix is flushed once to hashed bucket files
/// as `[group cols][state cols]` rows, every remaining partial streams its
/// state rows to the same buckets, and the buckets are drained one at a
/// time. Per group, a bucket file replays accumulator states in exactly
/// the morsel order the in-memory merge would have applied them, and a
/// first-seen order map (keys only — small next to the states being
/// spilled) restores the output order, so the result is bit-identical,
/// float accumulation included.
fn merge_partials_spilling(
    partials: Vec<GroupedAgg<'_>>,
    group_by_len: usize,
    aggs: &[AggExpr],
    mode: AggMode,
    mem: &MemoryConfig,
) -> Result<(Vec<Row>, SpillStats)> {
    let mut spill = SpillStats::default();
    let gov = mem.governor();
    let mut parts = partials.into_iter();
    let mut acc = match parts.next() {
        Some(p) => p,
        None => return Ok((Vec::new(), spill)),
    };

    // Phase 1: plain in-memory merge while the reservation can grow.
    let mut reservation = gov.try_reserve(acc.state_bytes() as u64);
    let mut overflow: Option<GroupedAgg> = None;
    if let Some(res) = reservation.as_mut() {
        for p in parts.by_ref() {
            if !res.try_resize((acc.state_bytes() + p.state_bytes()) as u64) {
                overflow = Some(p);
                break;
            }
            acc.merge(p)?;
        }
        if overflow.is_none() {
            return Ok((acc.finish(), spill));
        }
    }
    drop(reservation); // the flush below is about to free that heap state

    // Phase 2: out of core.
    let fanout = SPILL_FANOUT;
    let mut writers = Vec::with_capacity(fanout);
    for b in 0..fanout {
        writers.push(SpillWriter::create(mem.spill_dir(), &format!("agg-b{b}"))?);
    }
    spill.partitions += fanout;
    let mut bufs: Vec<Vec<Row>> = vec![Vec::new(); fanout];
    let mut order: HashMap<CompositeKey, usize> = HashMap::new();
    let rest: Vec<GroupedAgg> = overflow.into_iter().chain(parts).collect();
    for g in std::iter::once(acc).chain(rest) {
        for row in g.into_state_rows() {
            let kv = row.values().get(..group_by_len).ok_or_else(|| {
                ExecError::Runtime(
                    "aggregate state row shorter than its group key".to_string(),
                )
            })?;
            let key = CompositeKey::from_values(kv.to_vec());
            let next = order.len();
            order.entry(key.clone()).or_insert(next);
            let b = bucket_of(&key, 0, fanout);
            bufs[b].push(row);
            if bufs[b].len() >= ROWS_PER_FRAME {
                writers[b].write_rows(&bufs[b])?;
                bufs[b].clear();
            }
        }
    }
    let mut files = Vec::with_capacity(fanout);
    for (mut w, buf) in writers.into_iter().zip(bufs) {
        if !buf.is_empty() {
            w.write_rows(&buf)?;
        }
        let f = w.finish()?;
        spill.files += 1;
        spill.bytes_written += f.bytes() as usize;
        files.push(f);
    }

    // Drain: merge each bucket independently (a group never straddles
    // buckets), then restore first-seen output order.
    let mut tagged: Vec<(usize, Row)> = Vec::with_capacity(order.len());
    for f in files {
        if f.rows() == 0 {
            continue;
        }
        let rows = f.read_rows()?;
        spill.bytes_read += f.bytes() as usize;
        drop(f);
        let footprint = rows_footprint(&rows);
        let _res = gov
            .try_reserve(footprint)
            .unwrap_or_else(|| gov.force_reserve(footprint));
        drain_spilled_agg_bucket(rows, group_by_len, aggs, mode, &order, &mut tagged)?;
    }
    tagged.sort_by_key(|&(i, _)| i);
    Ok((tagged.into_iter().map(|(_, r)| r).collect(), spill))
}

/// Replays one bucket's `[group cols][state cols]` rows into fresh
/// accumulators (file order = in-memory merge order per group) and emits
/// each group's output row tagged with its global first-seen index.
fn drain_spilled_agg_bucket(
    rows: Vec<Row>,
    group_by_len: usize,
    aggs: &[AggExpr],
    out_mode: AggMode,
    order: &HashMap<CompositeKey, usize>,
    out: &mut Vec<(usize, Row)>,
) -> Result<()> {
    let mut groups: HashMap<CompositeKey, usize> = HashMap::new();
    let mut key_vals: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Accumulator>> = Vec::new();
    for row in rows {
        let vals = row.values();
        let kv = vals.get(..group_by_len).ok_or_else(|| {
            ExecError::Runtime("spilled aggregate row shorter than its group key".to_string())
        })?;
        let key = CompositeKey::from_values(kv.to_vec());
        let idx = match groups.get(&key) {
            Some(&i) => i,
            None => {
                let i = accs.len();
                groups.insert(key, i);
                key_vals.push(kv.to_vec());
                accs.push(aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                i
            }
        };
        let mut off = group_by_len;
        for (a, acc) in aggs.iter().zip(accs[idx].iter_mut()) {
            let n = state_arity(a.func);
            let state = vals.get(off..off + n).ok_or_else(|| {
                ExecError::Runtime(format!(
                    "spilled state row arity {} too short for state columns at {off}..{}",
                    row.arity(),
                    off + n
                ))
            })?;
            acc.merge_state(state)?;
            off += n;
        }
        if off != row.arity() {
            return Err(ExecError::Runtime(format!(
                "spilled state row arity {} does not match states ({off})",
                row.arity()
            )));
        }
    }
    for (kv, group_accs) in key_vals.into_iter().zip(accs) {
        let key = CompositeKey::from_values(kv.clone());
        let ord = *order.get(&key).ok_or_else(|| {
            ExecError::Runtime("spilled group missing from first-seen order map".to_string())
        })?;
        let mut vals = kv;
        for acc in group_accs {
            match out_mode {
                AggMode::Partial => vals.extend(acc.state()),
                AggMode::Final | AggMode::Complete => vals.push(acc.finish()),
            }
        }
        out.push((ord, Row::new(vals)));
    }
    Ok(())
}

/// The one row a global aggregate yields over an empty input
/// (`SUM` → NULL, `COUNT` → 0, …).
fn empty_global_row(aggs: &[AggExpr]) -> Row {
    Row::new(aggs.iter().map(|a| Accumulator::new(a.func).finish()).collect())
}

/// Sorts rows by the key expressions (NULLs last).
fn sort_rows(rows: &mut [Row], keys: &[(Expr, bool)]) -> Result<()> {
    // Decorate with key values to avoid re-evaluating during comparisons.
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    let mut scratch = Vec::new();
    for r in rows.iter() {
        let mut kv = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            kv.push(eval_with(e, r, &mut scratch)?);
        }
        decorated.push((kv, r.clone()));
    }
    decorated.sort_by(|(a, _), (b, _)| {
        for (i, (_, asc)) in keys.iter().enumerate() {
            // NULLs sort last regardless of direction.
            let ord = match (a[i].is_null(), b[i].is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    let ord = lardb_storage::ops::compare(&a[i], &b[i])
                        .unwrap_or(std::cmp::Ordering::Equal);
                    if *asc {
                        ord
                    } else {
                        ord.reverse()
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    for (slot, (_, r)) in rows.iter_mut().zip(decorated) {
        *slot = r;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_planner::physical::PhysicalPlanner;
    use lardb_planner::{AggFunc, CmpOp, JoinKind, LogicalPlan};
    use lardb_storage::{Column, DataType, Partitioning, Table};

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Double)]);
        let mut t = Table::new("nums", schema, 4, Partitioning::RoundRobin);
        for i in 0..20i64 {
            t.insert(Row::new(vec![Value::Integer(i), Value::Double(i as f64)])).unwrap();
        }
        catalog.create_table(t).unwrap();
        catalog
    }

    fn scan_plan(catalog: &Catalog, name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: catalog.table_schema(name).unwrap().with_qualifier(name),
        }
    }

    fn run(catalog: &Catalog, logical: &LogicalPlan) -> ExecutionResult {
        let stats: std::collections::HashMap<String, usize> = Default::default();
        let mut pp = PhysicalPlanner::new(catalog, &stats);
        let plan = pp.plan_gathered(logical).unwrap();
        let exec = Executor::new(catalog, Cluster::new(4));
        exec.execute(&plan).unwrap()
    }

    #[test]
    fn scan_and_filter() {
        let c = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan(&c, "nums")),
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64)),
        };
        let out = run(&c, &plan);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn project_expressions() {
        let c = setup();
        let plan = LogicalPlan::project(
            scan_plan(&c, "nums"),
            vec![(
                Expr::arith(lardb_storage::ops::ArithOp::Mul, Expr::col(1), Expr::lit(2.0)),
                "d".into(),
            )],
        )
        .unwrap();
        let out = run(&c, &plan);
        assert_eq!(out.num_rows(), 20);
        let sum: f64 = out.rows().iter().map(|r| r.value(0).as_double().unwrap()).sum();
        assert_eq!(sum, 2.0 * (0..20).sum::<i64>() as f64);
    }

    #[test]
    fn self_equi_join_counts() {
        let c = setup();
        let join = LogicalPlan::Join {
            left: Box::new(scan_plan(&c, "nums")),
            right: Box::new(scan_plan(&c, "nums")),
            kind: JoinKind::Inner,
            equi: vec![(Expr::col(0), Expr::col(0))],
            residual: None,
        };
        let out = run(&c, &join);
        assert_eq!(out.num_rows(), 20); // each id matches exactly itself
        // shuffles happened and were metered
        assert!(out.stats.total_bytes_shuffled() > 0);
    }

    #[test]
    fn cross_join_counts() {
        let c = setup();
        let join = LogicalPlan::Join {
            left: Box::new(scan_plan(&c, "nums")),
            right: Box::new(scan_plan(&c, "nums")),
            kind: JoinKind::Cross,
            equi: vec![],
            residual: None,
        };
        let out = run(&c, &join);
        assert_eq!(out.num_rows(), 400);
    }

    #[test]
    fn global_sum_and_count() {
        let c = setup();
        let agg = LogicalPlan::aggregate(
            scan_plan(&c, "nums"),
            vec![],
            vec![
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
                AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
            ],
        )
        .unwrap();
        let out = run(&c, &agg);
        assert_eq!(out.num_rows(), 1);
        let row = &out.rows()[0];
        assert_eq!(row.value(0).as_double().unwrap(), 190.0);
        assert_eq!(row.value(1).as_integer().unwrap(), 20);
    }

    #[test]
    fn grouped_aggregate() {
        let c = setup();
        // GROUP BY id % 2 — expressed as id - (id/2)*2
        use lardb_storage::ops::ArithOp;
        let parity = Expr::arith(
            ArithOp::Sub,
            Expr::col(0),
            Expr::arith(
                ArithOp::Mul,
                Expr::arith(ArithOp::Div, Expr::col(0), Expr::lit(2i64)),
                Expr::lit(2i64),
            ),
        );
        let agg = LogicalPlan::aggregate(
            scan_plan(&c, "nums"),
            vec![(parity, "p".into())],
            vec![AggExpr { func: AggFunc::Count, arg: None, name: "n".into() }],
        )
        .unwrap();
        let out = run(&c, &agg);
        assert_eq!(out.num_rows(), 2);
        for r in out.rows() {
            assert_eq!(r.value(1).as_integer().unwrap(), 10);
        }
    }

    #[test]
    fn empty_global_aggregate_yields_one_row() {
        let c = setup();
        let filtered = LogicalPlan::Filter {
            input: Box::new(scan_plan(&c, "nums")),
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(-1i64)),
        };
        let agg = LogicalPlan::aggregate(
            filtered,
            vec![],
            vec![
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
                AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
            ],
        )
        .unwrap();
        let out = run(&c, &agg);
        assert_eq!(out.num_rows(), 1);
        let row = &out.rows()[0];
        assert!(row.value(0).is_null());
        assert_eq!(row.value(1).as_integer().unwrap(), 0);
    }

    #[test]
    fn sort_and_limit() {
        let c = setup();
        let sorted = LogicalPlan::Sort {
            input: Box::new(scan_plan(&c, "nums")),
            keys: vec![(Expr::col(0), false)],
        };
        let limited = LogicalPlan::Limit { input: Box::new(sorted), n: 3 };
        let out = run(&c, &limited);
        let ids: Vec<i64> =
            out.rows().iter().map(|r| r.value(0).as_integer().unwrap()).collect();
        assert_eq!(ids, vec![19, 18, 17]);
    }

    #[test]
    fn stats_record_operators() {
        let c = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan(&c, "nums")),
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(100i64)),
        };
        let out = run(&c, &plan);
        let labels: Vec<String> =
            out.stats.operators().iter().map(|o| o.label.clone()).collect();
        assert!(labels.iter().any(|l| l.starts_with("TableScan")));
        // Under the default compiled engine the filter runs vectorized and
        // its label carries the " [vec]" suffix; prefix-match so the test
        // covers both engines.
        assert!(labels.iter().any(|l| l.starts_with("Filter")));
    }

    #[test]
    fn fused_aggregate_matches_materialized() {
        // The pipelined join→aggregate path must agree with the
        // materialize-everything path, for hash joins and cross joins.
        let c = setup();
        let stats_src: std::collections::HashMap<String, usize> = Default::default();
        let agg_over_join = |kind: JoinKind, equi: Vec<(Expr, Expr)>| {
            LogicalPlan::aggregate(
                LogicalPlan::Join {
                    left: Box::new(scan_plan(&c, "nums")),
                    right: Box::new(scan_plan(&c, "nums")),
                    kind,
                    equi,
                    residual: None,
                },
                vec![],
                vec![
                    AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(Expr::arith(
                            lardb_storage::ops::ArithOp::Mul,
                            Expr::col(1),
                            Expr::col(3),
                        )),
                        name: "s".into(),
                    },
                    AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
                ],
            )
            .unwrap()
        };
        for (kind, equi) in [
            (JoinKind::Inner, vec![(Expr::col(0), Expr::col(0))]),
            (JoinKind::Cross, vec![]),
        ] {
            let logical = agg_over_join(kind, equi);
            let mut pp = PhysicalPlanner::new(&c, &stats_src);
            let plan = pp.plan_gathered(&logical).unwrap();
            let fused = Executor::new(&c, Cluster::new(4))
                .execute(&plan)
                .unwrap();
            let materialized = Executor::new(&c, Cluster::new(4))
                .with_fusion(false)
                .execute(&plan)
                .unwrap();
            assert_eq!(fused.rows()[0].value(0), materialized.rows()[0].value(0));
            assert_eq!(fused.rows()[0].value(1), materialized.rows()[0].value(1));
        }
    }

    /// A MemoryConfig with a dedicated governor, a tiny budget, and its own
    /// spill directory (so the test can assert cleanup).
    fn tiny_mem(tag: &str) -> (MemoryConfig, std::path::PathBuf) {
        let dir = std::env::temp_dir()
            .join(format!("lardb-exec-spill-{}-{tag}", std::process::id()));
        (MemoryConfig::with_budget(Some(64), Some(dir.clone())), dir)
    }

    fn spill_dir_empty(dir: &std::path::Path) -> bool {
        match std::fs::read_dir(dir) {
            Ok(mut it) => it.next().is_none(),
            Err(_) => true, // never created — nothing leaked either
        }
    }

    #[test]
    fn budgeted_join_matches_unbounded_bit_exactly() {
        let c = setup();
        let stats_src: std::collections::HashMap<String, usize> = Default::default();
        let join = LogicalPlan::Join {
            left: Box::new(scan_plan(&c, "nums")),
            right: Box::new(scan_plan(&c, "nums")),
            kind: JoinKind::Inner,
            equi: vec![(Expr::col(0), Expr::col(0))],
            residual: None,
        };
        let mut pp = PhysicalPlanner::new(&c, &stats_src);
        let plan = pp.plan_gathered(&join).unwrap();
        let base = Executor::new(&c, Cluster::new(4)).execute(&plan).unwrap();
        let (mem, dir) = tiny_mem("join");
        let out = Executor::new(&c, Cluster::new(4))
            .with_memory(mem)
            .execute(&plan)
            .unwrap();
        assert_eq!(out.partitions, base.partitions, "grace join diverged");
        assert!(out.stats.total_spill_bytes() > 0, "64-byte budget must spill");
        assert!(out.stats.total_spill_files() > 0);
        assert!(
            out.stats.operators().iter().any(|o| o.label.starts_with("HashJoin")
                && o.spill.spilled()
                && o.spill.bytes_read > 0),
            "spill must be attributed to the join operator"
        );
        assert!(spill_dir_empty(&dir), "spill files must be cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_grouped_aggregate_matches_unbounded_bit_exactly() {
        use lardb_storage::ops::ArithOp;
        let c = setup();
        let stats_src: std::collections::HashMap<String, usize> = Default::default();
        let parity = Expr::arith(
            ArithOp::Sub,
            Expr::col(0),
            Expr::arith(
                ArithOp::Mul,
                Expr::arith(ArithOp::Div, Expr::col(0), Expr::lit(2i64)),
                Expr::lit(2i64),
            ),
        );
        let agg = LogicalPlan::aggregate(
            scan_plan(&c, "nums"),
            vec![(parity, "p".into())],
            vec![
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
                AggExpr { func: AggFunc::Avg, arg: Some(Expr::col(1)), name: "a".into() },
                AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
            ],
        )
        .unwrap();
        let mut pp = PhysicalPlanner::new(&c, &stats_src);
        let plan = pp.plan_gathered(&agg).unwrap();
        let base = Executor::new(&c, Cluster::new(4)).execute(&plan).unwrap();
        let (mem, dir) = tiny_mem("agg");
        let out = Executor::new(&c, Cluster::new(4))
            .with_memory(mem)
            .execute(&plan)
            .unwrap();
        // Bit-identical including row (group first-seen) order.
        assert_eq!(out.partitions, base.partitions, "spilling aggregation diverged");
        assert!(out.stats.total_spill_bytes() > 0, "64-byte budget must spill");
        assert!(spill_dir_empty(&dir), "spill files must be cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_fused_aggregate_matches_unbounded() {
        let c = setup();
        let stats_src: std::collections::HashMap<String, usize> = Default::default();
        let logical = LogicalPlan::aggregate(
            LogicalPlan::Join {
                left: Box::new(scan_plan(&c, "nums")),
                right: Box::new(scan_plan(&c, "nums")),
                kind: JoinKind::Inner,
                equi: vec![(Expr::col(0), Expr::col(0))],
                residual: None,
            },
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::arith(
                        lardb_storage::ops::ArithOp::Mul,
                        Expr::col(1),
                        Expr::col(3),
                    )),
                    name: "s".into(),
                },
                AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
            ],
        )
        .unwrap();
        let mut pp = PhysicalPlanner::new(&c, &stats_src);
        let plan = pp.plan_gathered(&logical).unwrap();
        let base = Executor::new(&c, Cluster::new(4)).execute(&plan).unwrap();
        let (mem, dir) = tiny_mem("fused");
        let out = Executor::new(&c, Cluster::new(4))
            .with_memory(mem)
            .execute(&plan)
            .unwrap();
        assert_eq!(out.partitions, base.partitions, "fused grace join diverged");
        assert!(out.stats.total_spill_bytes() > 0, "fused path must spill too");
        assert!(spill_dir_empty(&dir), "spill files must be cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fused_stats_split_join_and_aggregation() {
        let c = setup();
        let stats_src: std::collections::HashMap<String, usize> = Default::default();
        let logical = LogicalPlan::aggregate(
            LogicalPlan::Join {
                left: Box::new(scan_plan(&c, "nums")),
                right: Box::new(scan_plan(&c, "nums")),
                kind: JoinKind::Inner,
                equi: vec![(Expr::col(0), Expr::col(0))],
                residual: None,
            },
            vec![],
            vec![AggExpr { func: AggFunc::Count, arg: None, name: "n".into() }],
        )
        .unwrap();
        let mut pp = PhysicalPlanner::new(&c, &stats_src);
        let plan = pp.plan_gathered(&logical).unwrap();
        let out = Executor::new(&c, Cluster::new(4)).execute(&plan).unwrap();
        let labels: Vec<String> =
            out.stats.operators().iter().map(|o| o.label.clone()).collect();
        assert!(labels.iter().any(|l| l == "HashJoin"), "{labels:?}");
        assert!(
            labels.iter().any(|l| l.starts_with("HashAggregate")),
            "{labels:?}"
        );
        // The fused join record reports the joined-row count.
        let join_stat = out
            .stats
            .operators()
            .iter()
            .find(|o| o.label == "HashJoin")
            .unwrap();
        assert_eq!(join_stat.rows_out, 20);
    }

    #[test]
    fn sort_places_nulls_last() {
        let mut rows = vec![
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Integer(2)]),
            Row::new(vec![Value::Integer(1)]),
        ];
        sort_rows(&mut rows, &[(Expr::col(0), true)]).unwrap();
        assert_eq!(rows[0].value(0), &Value::Integer(1));
        assert!(rows[2].value(0).is_null());
        // Descending still keeps NULLs last.
        sort_rows(&mut rows, &[(Expr::col(0), false)]).unwrap();
        assert_eq!(rows[0].value(0), &Value::Integer(2));
        assert!(rows[2].value(0).is_null());
    }

    #[test]
    fn serialized_transports_match_pointer_exchange() {
        // A self equi-join forces a hash exchange; the serialized and tcp
        // transports must produce byte-identical rows in identical order,
        // while metering actual encoded frames.
        let c = setup();
        let stats_src: std::collections::HashMap<String, usize> = Default::default();
        let join = LogicalPlan::Join {
            left: Box::new(scan_plan(&c, "nums")),
            right: Box::new(scan_plan(&c, "nums")),
            kind: JoinKind::Inner,
            equi: vec![(Expr::col(0), Expr::col(0))],
            residual: None,
        };
        let mut pp = PhysicalPlanner::new(&c, &stats_src);
        let plan = pp.plan_gathered(&join).unwrap();
        let base = Executor::new(&c, Cluster::new(4)).execute(&plan).unwrap();
        assert_eq!(base.stats.total_frames(), 0, "pointer mode ships no frames");
        for mode in [TransportMode::Serialized, TransportMode::Tcp] {
            let out = Executor::new(&c, Cluster::new(4))
                .with_transport(mode)
                .execute(&plan)
                .unwrap();
            assert_eq!(out.partitions, base.partitions, "{mode} diverged");
            assert!(out.stats.total_frames() > 0, "{mode} shipped no frames");
            assert!(out.stats.total_bytes_shuffled() > 0);
            // Per-channel detail is attached to the exchange operators.
            let with_channels = out
                .stats
                .operators()
                .iter()
                .filter(|o| !o.shuffle.channels.is_empty())
                .count();
            assert!(with_channels > 0, "{mode} recorded no channel stats");
        }
    }

    #[test]
    fn replicated_scan_gathers_single_copy() {
        let c = setup();
        let schema = Schema::new(vec![Column::new("id", DataType::Integer)]);
        let mut t = Table::new("rep", schema, 4, Partitioning::Replicated);
        for i in 0..5i64 {
            t.insert(Row::new(vec![Value::Integer(i)])).unwrap();
        }
        c.create_table(t).unwrap();
        let out = run(&c, &scan_plan(&c, "rep"));
        assert_eq!(out.num_rows(), 5);
    }
}
