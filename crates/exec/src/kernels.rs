//! Column-at-a-time kernels for the vectorized engine.
//!
//! Every kernel mirrors the row interpreter ([`crate::eval`]) exactly on
//! the lanes it evaluates: when a kernel returns `Ok`, its output values
//! are bit-identical to what per-row evaluation would produce. When a
//! kernel cannot guarantee that — an unsupported type combination, an
//! integer overflow the interpreter might or might not reach, a NaN
//! comparison, a lane error inside an eagerly evaluated `AND`/`OR`
//! branch — it returns `Err`, and the executor re-runs the whole chunk
//! through the row interpreter and takes *its* result. That fallback rule
//! is what makes eager (non-short-circuit) evaluation safe: the compiled
//! path evaluates a superset of the (row, subexpression) pairs the
//! interpreter would, so a compiled success implies interpreter agreement,
//! and any disagreement route ends in `Err`, never in a wrong answer.
//!
//! Kernels take an optional *selection vector* (`sel`): the sorted lane
//! indices still alive after upstream filters. With no selection they run
//! branch-free tight loops over full slices; `Vector ⊕ scalar` and
//! `Vector ⊕ Vector` lanes dispatch to the `lardb-la` slice kernels
//! directly instead of going through `ops::arith`'s dynamic overload
//! match per row.

use lardb_planner::{Builtin, CmpOp};
use lardb_storage::ops::{self, ArithOp};
use lardb_storage::Value;

use crate::batch::{Bitmap, Col};
use crate::eval::cmp_holds;
use crate::{ExecError, Result};

/// The interpreter would have to decide this lane/type combination; the
/// chunk is replayed through [`crate::eval`].
fn unsupported(what: &str) -> ExecError {
    ExecError::Runtime(format!("vectorized kernel fallback: {what}"))
}

/// Runs `f` over every selected lane.
#[inline]
fn for_lanes(
    n: usize,
    sel: Option<&[u32]>,
    mut f: impl FnMut(usize) -> Result<()>,
) -> Result<()> {
    match sel {
        Some(s) => {
            for &i in s {
                f(i as usize)?;
            }
        }
        None => {
            for i in 0..n {
                f(i)?;
            }
        }
    }
    Ok(())
}

/// `ArithOp` over two `f64`s — must stay identical to the private
/// `ArithOp::apply_f64` in `lardb_storage::ops` (plain IEEE ops; `x/0.0`
/// is `inf`, not an error, exactly as the interpreter computes it).
#[inline]
fn apply_f64(op: ArithOp, a: f64, b: f64) -> f64 {
    match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => a / b,
    }
}

/// A lane read that borrows boxed values and materializes typed ones.
enum LaneVal<'a> {
    R(&'a Value),
    O(Value),
}

impl<'a> LaneVal<'a> {
    #[inline]
    fn get(&self) -> &Value {
        match self {
            LaneVal::R(v) => v,
            LaneVal::O(v) => v,
        }
    }
}

#[inline]
fn lane_val(col: &Col, i: usize) -> LaneVal<'_> {
    match col {
        Col::Boxed(v) => LaneVal::R(&v[i]),
        other => LaneVal::O(other.value_at(i)),
    }
}

/// Numeric lane as `f64`, `None` when NULL. Matches `Value::as_double`'s
/// `Integer → as f64` promotion.
#[inline]
fn num_f64(col: &Col, i: usize) -> Option<f64> {
    match col {
        Col::F64 { data, valid } => valid.get(i).then(|| data[i]),
        Col::I64 { data, valid } => valid.get(i).then(|| data[i] as f64),
        _ => None,
    }
}

/// Element-wise arithmetic, mirroring `ops::arith`'s overload matrix.
pub fn arith(op: ArithOp, a: &Col, b: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    match (a, b) {
        (Col::Boxed(_), _) | (_, Col::Boxed(_)) => boxed_arith(op, a, b, sel, n),
        (Col::F64 { data: ad, valid: av }, Col::F64 { data: bd, valid: bv }) => {
            if sel.is_none() && av.all_valid() && bv.all_valid() {
                // Branch-free: one fused pass over both slices.
                let data =
                    ad.iter().zip(bd).map(|(&x, &y)| apply_f64(op, x, y)).collect();
                return Ok(Col::F64 { data, valid: Bitmap::new_valid(n) });
            }
            let mut data = vec![0.0f64; n];
            let mut valid = Bitmap::new_invalid(n);
            for_lanes(n, sel, |i| {
                if av.get(i) && bv.get(i) {
                    data[i] = apply_f64(op, ad[i], bd[i]);
                    valid.set_valid(i);
                }
                Ok(())
            })?;
            Ok(Col::F64 { data, valid })
        }
        (Col::I64 { data: ad, valid: av }, Col::I64 { data: bd, valid: bv }) => {
            let mut data = vec![0i64; n];
            let mut valid = Bitmap::new_invalid(n);
            for_lanes(n, sel, |i| {
                if av.get(i) && bv.get(i) {
                    // Checked ops: overflow (a debug-build panic on the
                    // interpreted path) and division by zero both route to
                    // the interpreter, which decides the actual outcome.
                    let out = match op {
                        ArithOp::Add => ad[i].checked_add(bd[i]),
                        ArithOp::Sub => ad[i].checked_sub(bd[i]),
                        ArithOp::Mul => ad[i].checked_mul(bd[i]),
                        ArithOp::Div => ad[i].checked_div(bd[i]),
                    }
                    .ok_or_else(|| unsupported("integer overflow or division by zero"))?;
                    data[i] = out;
                    valid.set_valid(i);
                }
                Ok(())
            })?;
            Ok(Col::I64 { data, valid })
        }
        (Col::F64 { .. } | Col::I64 { .. }, Col::F64 { .. } | Col::I64 { .. }) => {
            // Mixed INTEGER/DOUBLE promotes to DOUBLE, as `as_double` does.
            let mut data = vec![0.0f64; n];
            let mut valid = Bitmap::new_invalid(n);
            for_lanes(n, sel, |i| {
                if let (Some(x), Some(y)) = (num_f64(a, i), num_f64(b, i)) {
                    data[i] = apply_f64(op, x, y);
                    valid.set_valid(i);
                }
                Ok(())
            })?;
            Ok(Col::F64 { data, valid })
        }
        _ => Err(unsupported("arithmetic over BOOLEAN lanes")),
    }
}

/// Arithmetic with at least one boxed side: per-lane by reference, with
/// the LA broadcast cases dispatched straight to the `lardb-la` slice
/// kernels (the same ones `ops::arith` would call).
fn boxed_arith(op: ArithOp, a: &Col, b: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    let mut out = vec![Value::Null; n];
    for_lanes(n, sel, |i| {
        let (l, r) = (lane_val(a, i), lane_val(b, i));
        out[i] = arith_lane(op, l.get(), r.get())?;
        Ok(())
    })?;
    Ok(Col::Boxed(out))
}

/// One boxed arithmetic lane. The fast paths are *specializations* of
/// `ops::arith` arms (same underlying `Vector` methods, same `apply_f64`),
/// so their results are bit-identical; everything else — including the
/// error cases — goes through `ops::arith` itself. Integer pairs use
/// checked ops so overflow routes to the interpreter (see module docs).
fn arith_lane(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Integer(x), Value::Integer(y)) => {
            if *y == 0 && op == ArithOp::Div {
                // Let ops::arith produce its exact division-by-zero error.
                return Ok(ops::arith(op, l, r)?);
            }
            let out = match op {
                ArithOp::Add => x.checked_add(*y),
                ArithOp::Sub => x.checked_sub(*y),
                ArithOp::Mul => x.checked_mul(*y),
                ArithOp::Div => x.checked_div(*y),
            }
            .ok_or_else(|| unsupported("integer overflow"))?;
            Ok(Value::Integer(out))
        }
        (Value::Vector(x), Value::Vector(y)) => {
            let out = match op {
                ArithOp::Add => x.add(y),
                ArithOp::Sub => x.sub(y),
                ArithOp::Mul => x.mul(y),
                ArithOp::Div => x.div(y),
            }?;
            Ok(Value::vector(out))
        }
        (Value::Vector(v), s) => match s.as_double() {
            Some(s) => Ok(Value::vector(v.map(|x| apply_f64(op, x, s)))),
            None => Ok(ops::arith(op, l, r)?),
        },
        (s, Value::Vector(v)) => match s.as_double() {
            Some(s) => Ok(Value::vector(v.map(|x| apply_f64(op, s, x)))),
            None => Ok(ops::arith(op, l, r)?),
        },
        _ => Ok(ops::arith(op, l, r)?),
    }
}

/// Element-wise comparison to a BOOLEAN column; NULL operands produce
/// NULL lanes, incomparable lanes (NaN, mixed string/number) fall back.
pub fn cmp(op: CmpOp, a: &Col, b: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    let mut data = vec![false; n];
    let mut valid = Bitmap::new_invalid(n);
    match (a, b) {
        (Col::Boxed(_), _) | (_, Col::Boxed(_)) => {
            for_lanes(n, sel, |i| {
                let (l, r) = (lane_val(a, i), lane_val(b, i));
                let (l, r) = (l.get(), r.get());
                if l.is_null() || r.is_null() {
                    return Ok(());
                }
                let ord = ops::compare(l, r)
                    .ok_or_else(|| unsupported("incomparable lane values"))?;
                data[i] = cmp_holds(op, ord);
                valid.set_valid(i);
                Ok(())
            })?;
        }
        (Col::Bool { data: ad, valid: av }, Col::Bool { data: bd, valid: bv }) => {
            for_lanes(n, sel, |i| {
                if av.get(i) && bv.get(i) {
                    data[i] = cmp_holds(op, ad[i].cmp(&bd[i]));
                    valid.set_valid(i);
                }
                Ok(())
            })?;
        }
        (Col::F64 { .. } | Col::I64 { .. }, Col::F64 { .. } | Col::I64 { .. }) => {
            for_lanes(n, sel, |i| {
                if let (Some(x), Some(y)) = (num_f64(a, i), num_f64(b, i)) {
                    let ord = x
                        .partial_cmp(&y)
                        .ok_or_else(|| unsupported("NaN comparison"))?;
                    data[i] = cmp_holds(op, ord);
                    valid.set_valid(i);
                } // else: NULL lane
                Ok(())
            })?;
        }
        _ => return Err(unsupported("comparing BOOLEAN with numeric lanes")),
    }
    Ok(Col::Bool { data, valid })
}

/// Three-valued truth of one lane, under `AND`'s classification: FALSE
/// dominates, NULL is unknown, and any other non-NULL value — the
/// interpreter is deliberately lenient here — behaves as "not FALSE".
#[inline]
fn tri_and(col: &Col, i: usize) -> Option<bool> {
    match col {
        Col::Bool { data, valid } => valid.get(i).then(|| data[i]),
        Col::F64 { valid, .. } | Col::I64 { valid, .. } => valid.get(i).then_some(true),
        Col::Boxed(v) => match &v[i] {
            Value::Boolean(b) => Some(*b),
            Value::Null => None,
            _ => Some(true),
        },
    }
}

/// Three-valued truth of one lane under `OR`'s classification: TRUE
/// dominates, NULL is unknown, any other non-NULL value is "not TRUE".
#[inline]
fn tri_or(col: &Col, i: usize) -> Option<bool> {
    match col {
        Col::Bool { data, valid } => valid.get(i).then(|| data[i]),
        Col::F64 { valid, .. } | Col::I64 { valid, .. } => valid.get(i).then_some(false),
        Col::Boxed(v) => match &v[i] {
            Value::Boolean(b) => Some(*b),
            Value::Null => None,
            _ => Some(false),
        },
    }
}

/// Lane-wise SQL `AND` (eager: both sides were already evaluated).
pub fn and(a: &Col, b: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    let mut data = vec![false; n];
    let mut valid = Bitmap::new_invalid(n);
    for_lanes(n, sel, |i| {
        let out = match (tri_and(a, i), tri_and(b, i)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (None, _) | (_, None) => None,
            _ => Some(true),
        };
        if let Some(v) = out {
            data[i] = v;
            valid.set_valid(i);
        }
        Ok(())
    })?;
    Ok(Col::Bool { data, valid })
}

/// Lane-wise SQL `OR` (eager: both sides were already evaluated).
pub fn or(a: &Col, b: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    let mut data = vec![false; n];
    let mut valid = Bitmap::new_invalid(n);
    for_lanes(n, sel, |i| {
        let out = match (tri_or(a, i), tri_or(b, i)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (None, _) | (_, None) => None,
            _ => Some(false),
        };
        if let Some(v) = out {
            data[i] = v;
            valid.set_valid(i);
        }
        Ok(())
    })?;
    Ok(Col::Bool { data, valid })
}

/// Lane-wise SQL `NOT`. Non-BOOLEAN lanes are a hard interpreter error
/// (`NOT expects BOOLEAN`), so they fall back.
pub fn not(a: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    let mut data = vec![false; n];
    let mut valid = Bitmap::new_invalid(n);
    match a {
        Col::Bool { data: ad, valid: av } => {
            for_lanes(n, sel, |i| {
                if av.get(i) {
                    data[i] = !ad[i];
                    valid.set_valid(i);
                }
                Ok(())
            })?;
        }
        Col::F64 { valid: av, .. } | Col::I64 { valid: av, .. } => {
            for_lanes(n, sel, |i| {
                if av.get(i) {
                    return Err(unsupported("NOT over non-BOOLEAN lane"));
                }
                Ok(())
            })?;
        }
        Col::Boxed(v) => {
            for_lanes(n, sel, |i| {
                match &v[i] {
                    Value::Boolean(b) => {
                        data[i] = !b;
                        valid.set_valid(i);
                    }
                    Value::Null => {}
                    _ => return Err(unsupported("NOT over non-BOOLEAN lane")),
                }
                Ok(())
            })?;
        }
    }
    Ok(Col::Bool { data, valid })
}

/// Lane-wise unary minus, mirroring `ops::negate`.
pub fn negate(a: &Col, sel: Option<&[u32]>, n: usize) -> Result<Col> {
    match a {
        Col::F64 { data: ad, valid: av } => {
            if sel.is_none() && av.all_valid() {
                return Ok(Col::F64 {
                    data: ad.iter().map(|&x| -x).collect(),
                    valid: Bitmap::new_valid(n),
                });
            }
            let mut data = vec![0.0f64; n];
            let mut valid = Bitmap::new_invalid(n);
            for_lanes(n, sel, |i| {
                if av.get(i) {
                    data[i] = -ad[i];
                    valid.set_valid(i);
                }
                Ok(())
            })?;
            Ok(Col::F64 { data, valid })
        }
        Col::I64 { data: ad, valid: av } => {
            let mut data = vec![0i64; n];
            let mut valid = Bitmap::new_invalid(n);
            for_lanes(n, sel, |i| {
                if av.get(i) {
                    data[i] = ad[i]
                        .checked_neg()
                        .ok_or_else(|| unsupported("integer negation overflow"))?;
                    valid.set_valid(i);
                }
                Ok(())
            })?;
            Ok(Col::I64 { data, valid })
        }
        Col::Bool { valid: av, .. } => {
            // Valid lanes are a hard error ("cannot negate BOOLEAN");
            // all-NULL lanes legitimately negate to NULL.
            let mut ok = true;
            for_lanes(n, sel, |i| {
                ok &= !av.get(i);
                Ok(())
            })?;
            if !ok {
                return Err(unsupported("negating BOOLEAN lanes"));
            }
            Ok(Col::F64 { data: vec![0.0; n], valid: Bitmap::new_invalid(n) })
        }
        Col::Boxed(v) => {
            let mut out = vec![Value::Null; n];
            for_lanes(n, sel, |i| {
                out[i] = ops::negate(&v[i])?;
                Ok(())
            })?;
            Ok(Col::Boxed(out))
        }
    }
}

/// Lane-wise builtin call. Arguments are gathered per lane into the
/// reusable `scratch` buffer; `Builtin::evaluate` handles its own
/// NULL-in → NULL-out rule, so lane validity needs no special casing.
pub fn call(
    func: &Builtin,
    args: &[&Col],
    sel: Option<&[u32]>,
    n: usize,
    scratch: &mut Vec<Value>,
) -> Result<Col> {
    let mut out = vec![Value::Null; n];
    for_lanes(n, sel, |i| {
        scratch.clear();
        for a in args {
            scratch.push(a.value_at(i));
        }
        out[i] = func.evaluate(scratch)?;
        Ok(())
    })?;
    Ok(Col::Boxed(out))
}

/// Builds the selection vector of lanes whose predicate lane is valid
/// *and* TRUE (SQL: NULL filters the row out). The BOOLEAN path appends
/// branch-free: write the lane index unconditionally, advance the length
/// by the keep bit.
pub fn selection(pred: &Col, sel: Option<&[u32]>, n: usize) -> Result<Vec<u32>> {
    match pred {
        Col::Bool { data, valid } => {
            let cap = sel.map_or(n, <[u32]>::len);
            let mut out = vec![0u32; cap];
            let mut k = 0usize;
            match sel {
                None => {
                    // Indexing `data` by the loop counter is deliberate: the
                    // write-then-advance idiom stays branch-free only if the
                    // lane index and the keep bit come from the same `i`.
                    #[allow(clippy::needless_range_loop)]
                    for i in 0..n {
                        out[k] = i as u32;
                        k += (valid.get(i) & data[i]) as usize;
                    }
                }
                Some(s) => {
                    for &i in s {
                        out[k] = i;
                        k += (valid.get(i as usize) & data[i as usize]) as usize;
                    }
                }
            }
            out.truncate(k);
            Ok(out)
        }
        Col::F64 { valid, .. } | Col::I64 { valid, .. } => {
            // A valid lane is a non-BOOLEAN predicate value — a hard
            // interpreter error; all-NULL lanes filter everything out.
            for_lanes(n, sel, |i| {
                if valid.get(i) {
                    return Err(unsupported("non-BOOLEAN predicate lane"));
                }
                Ok(())
            })?;
            Ok(Vec::new())
        }
        Col::Boxed(v) => {
            let mut out = Vec::new();
            for_lanes(n, sel, |i| {
                match &v[i] {
                    Value::Boolean(true) => out.push(i as u32),
                    Value::Boolean(false) | Value::Null => {}
                    _ => return Err(unsupported("non-BOOLEAN predicate lane")),
                }
                Ok(())
            })?;
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;

    fn f64_col(vals: &[Option<f64>]) -> Col {
        let mut data = vec![0.0; vals.len()];
        let mut valid = Bitmap::new_invalid(vals.len());
        for (i, v) in vals.iter().enumerate() {
            if let Some(x) = v {
                data[i] = *x;
                valid.set_valid(i);
            }
        }
        Col::F64 { data, valid }
    }

    fn i64_col(vals: &[Option<i64>]) -> Col {
        let mut data = vec![0; vals.len()];
        let mut valid = Bitmap::new_invalid(vals.len());
        for (i, v) in vals.iter().enumerate() {
            if let Some(x) = v {
                data[i] = *x;
                valid.set_valid(i);
            }
        }
        Col::I64 { data, valid }
    }

    #[test]
    fn f64_arith_fast_and_null_paths() {
        let a = f64_col(&[Some(1.0), Some(2.0), Some(3.0)]);
        let b = f64_col(&[Some(10.0), Some(20.0), Some(30.0)]);
        let out = arith(ArithOp::Add, &a, &b, None, 3).unwrap();
        assert_eq!(out.value_at(1), Value::Double(22.0));

        let c = f64_col(&[Some(1.0), None, Some(3.0)]);
        let out = arith(ArithOp::Mul, &a, &c, None, 3).unwrap();
        assert_eq!(out.value_at(0), Value::Double(1.0));
        assert!(out.value_at(1).is_null());
    }

    #[test]
    fn int_div_zero_falls_back_but_float_div_zero_does_not() {
        let a = i64_col(&[Some(10)]);
        let z = i64_col(&[Some(0)]);
        assert!(arith(ArithOp::Div, &a, &z, None, 1).is_err());
        let fa = f64_col(&[Some(10.0)]);
        let fz = f64_col(&[Some(0.0)]);
        let out = arith(ArithOp::Div, &fa, &fz, None, 1).unwrap();
        assert_eq!(out.value_at(0), Value::Double(f64::INFINITY));
    }

    #[test]
    fn mixed_promotes_like_interpreter() {
        let a = i64_col(&[Some(3)]);
        let b = f64_col(&[Some(0.5)]);
        let out = arith(ArithOp::Mul, &a, &b, None, 1).unwrap();
        assert_eq!(out.value_at(0), Value::Double(1.5));
    }

    #[test]
    fn vector_broadcast_matches_ops() {
        let v = Value::vector(Vector::from_slice(&[1.0, 2.0]));
        let col = Col::Boxed(vec![v.clone()]);
        let s = f64_col(&[Some(2.5)]);
        let out = arith(ArithOp::Mul, &col, &s, None, 1).unwrap();
        let want = ops::arith(ArithOp::Mul, &v, &Value::Double(2.5)).unwrap();
        assert_eq!(out.value_at(0), want);
        // scalar on the left of a Sub: operand order matters.
        let out = arith(ArithOp::Sub, &s, &col, None, 1).unwrap();
        let want = ops::arith(ArithOp::Sub, &Value::Double(2.5), &v).unwrap();
        assert_eq!(out.value_at(0), want);
    }

    #[test]
    fn cmp_null_and_nan() {
        let a = f64_col(&[Some(1.0), None, Some(f64::NAN)]);
        let b = f64_col(&[Some(2.0), Some(1.0), Some(1.0)]);
        let out = cmp(CmpOp::Lt, &a, &b, Some(&[0, 1]), 3).unwrap();
        assert_eq!(out.value_at(0), Value::Boolean(true));
        assert!(out.value_at(1).is_null());
        // NaN lane selected → fallback.
        assert!(cmp(CmpOp::Lt, &a, &b, None, 3).is_err());
    }

    #[test]
    fn three_valued_and_or_lanes() {
        let t = Col::splat(&Value::Boolean(true), 1);
        let f = Col::splat(&Value::Boolean(false), 1);
        let nl = Col::splat(&Value::Null, 1);
        assert_eq!(and(&f, &nl, None, 1).unwrap().value_at(0), Value::Boolean(false));
        assert!(and(&t, &nl, None, 1).unwrap().value_at(0).is_null());
        assert_eq!(or(&t, &nl, None, 1).unwrap().value_at(0), Value::Boolean(true));
        assert!(or(&f, &nl, None, 1).unwrap().value_at(0).is_null());
        // Interpreter leniency: a non-BOOLEAN lane is "not FALSE" in AND.
        let five = Col::splat(&Value::Integer(5), 1);
        assert_eq!(and(&five, &t, None, 1).unwrap().value_at(0), Value::Boolean(true));
        assert_eq!(or(&five, &f, None, 1).unwrap().value_at(0), Value::Boolean(false));
    }

    #[test]
    fn selection_is_sorted_and_respects_nulls() {
        let pred = Col::Bool {
            data: vec![true, false, true, true],
            valid: {
                let mut v = Bitmap::new_valid(4);
                v.set_invalid(2); // NULL lane filters out
                v
            },
        };
        assert_eq!(selection(&pred, None, 4).unwrap(), vec![0, 3]);
        assert_eq!(selection(&pred, Some(&[1, 3]), 4).unwrap(), vec![3]);
        // Non-BOOLEAN predicate lane → fallback.
        let num = Col::splat(&Value::Integer(1), 2);
        assert!(selection(&num, None, 2).is_err());
    }

    #[test]
    fn not_and_negate() {
        let t = Col::splat(&Value::Boolean(true), 2);
        assert_eq!(not(&t, None, 2).unwrap().value_at(1), Value::Boolean(false));
        let five = Col::splat(&Value::Integer(5), 1);
        assert!(not(&five, None, 1).is_err());
        assert_eq!(negate(&five, None, 1).unwrap().value_at(0), Value::Integer(-5));
        let nl = Col::splat(&Value::Null, 1);
        assert!(negate(&nl, None, 1).unwrap().value_at(0).is_null());
    }

    #[test]
    fn call_gathers_args_with_scratch() {
        let v = Value::vector(Vector::from_slice(&[3.0, 4.0]));
        let col = Col::Boxed(vec![v.clone(), Value::Null]);
        let mut scratch = Vec::new();
        let out = call(&Builtin::InnerProduct, &[&col, &col], None, 2, &mut scratch)
            .unwrap();
        assert_eq!(out.value_at(0), Value::Double(25.0));
        assert!(out.value_at(1).is_null());
    }
}
