//! Columnar morsel batches for the vectorized engine.
//!
//! A [`ColumnBatch`] is a morsel-sized chunk of rows pivoted into
//! columns: fixed-width `f64` / `i64` / `bool` columns with validity
//! bitmaps for NULLs, plus a fallback *boxed* column (plain `Value`s)
//! for matrices, vectors, strings, and mixed-typed columns. Batches are
//! built from the `Arc`-backed rows a scan (or any upstream operator)
//! materialized, evaluated column-at-a-time by [`crate::compile::Program`]
//! bytecode, and converted back to rows only at pipeline edges.
//!
//! Column typing is decided per batch from the values actually present:
//! a column whose non-NULL values are all `Integer` becomes `I64`, all
//! `Double` becomes `F64`, all `Boolean` becomes `Bool`; anything else —
//! including an `Integer`/`Double` mix, which must round-trip each
//! `Value` exactly — stays boxed. Reconstruction ([`Col::value_at`]) is
//! therefore bit-identical to the source values, `-0.0` included.

use std::sync::Arc;

use lardb_storage::{Row, Value};

/// A validity bitmap: bit `i` set ⇔ lane `i` holds a (non-NULL) value.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All lanes valid.
    pub fn new_valid(len: usize) -> Self {
        Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len }
    }

    /// All lanes NULL.
    pub fn new_invalid(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Whether lane `i` is valid.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks lane `i` valid.
    #[inline]
    pub fn set_valid(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Marks lane `i` NULL.
    #[inline]
    pub fn set_invalid(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// True when every lane is valid (no NULLs) — enables the branch-free
    /// kernel fast paths.
    pub fn all_valid(&self) -> bool {
        let full = self.len / 64;
        if self.words[..full].iter().any(|&w| w != u64::MAX) {
            return false;
        }
        let rem = self.len % 64;
        rem == 0 || self.words[full] & ((1u64 << rem) - 1) == (1u64 << rem) - 1
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-lane bitmap.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One column of a batch.
#[derive(Debug, Clone)]
pub enum Col {
    /// Fixed-width doubles with a validity bitmap.
    F64 {
        /// Lane values (garbage where invalid).
        data: Vec<f64>,
        /// Validity: unset ⇔ NULL.
        valid: Bitmap,
    },
    /// Fixed-width integers with a validity bitmap.
    I64 {
        /// Lane values (garbage where invalid).
        data: Vec<i64>,
        /// Validity: unset ⇔ NULL.
        valid: Bitmap,
    },
    /// Booleans with a validity bitmap.
    Bool {
        /// Lane values (garbage where invalid).
        data: Vec<bool>,
        /// Validity: unset ⇔ NULL.
        valid: Bitmap,
    },
    /// Fallback: one `Value` per lane (vectors, matrices, strings, mixed
    /// numeric columns). NULL lanes hold `Value::Null`.
    Boxed(Vec<Value>),
}

impl Col {
    /// Number of lanes.
    pub fn len(&self) -> usize {
        match self {
            Col::F64 { data, .. } => data.len(),
            Col::I64 { data, .. } => data.len(),
            Col::Bool { data, .. } => data.len(),
            Col::Boxed(v) => v.len(),
        }
    }

    /// True for a zero-lane column.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether lane `i` holds a non-NULL value.
    #[inline]
    pub fn valid(&self, i: usize) -> bool {
        match self {
            Col::F64 { valid, .. } | Col::I64 { valid, .. } | Col::Bool { valid, .. } => {
                valid.get(i)
            }
            Col::Boxed(v) => !v[i].is_null(),
        }
    }

    /// Reconstructs lane `i` as an owned [`Value`] — bit-identical to the
    /// value the column was built from (or that a kernel computed).
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Col::F64 { data, valid } => {
                if valid.get(i) {
                    Value::Double(data[i])
                } else {
                    Value::Null
                }
            }
            Col::I64 { data, valid } => {
                if valid.get(i) {
                    Value::Integer(data[i])
                } else {
                    Value::Null
                }
            }
            Col::Bool { data, valid } => {
                if valid.get(i) {
                    Value::Boolean(data[i])
                } else {
                    Value::Null
                }
            }
            Col::Boxed(v) => v[i].clone(),
        }
    }

    /// A constant column: `v` replicated across `n` lanes (how literals
    /// enter a batch).
    pub fn splat(v: &Value, n: usize) -> Col {
        match v {
            Value::Integer(x) => Col::I64 { data: vec![*x; n], valid: Bitmap::new_valid(n) },
            Value::Double(x) => Col::F64 { data: vec![*x; n], valid: Bitmap::new_valid(n) },
            Value::Boolean(x) => Col::Bool { data: vec![*x; n], valid: Bitmap::new_valid(n) },
            Value::Null => Col::F64 { data: vec![0.0; n], valid: Bitmap::new_invalid(n) },
            other => Col::Boxed(vec![other.clone(); n]),
        }
    }
}

/// A morsel chunk pivoted into columns.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    cols: Vec<Arc<Col>>,
    len: usize,
}

impl ColumnBatch {
    /// Pivots rows into columns, choosing each column's representation
    /// from the values present (see module docs). Returns `None` when the
    /// rows disagree on arity — the caller falls back to the row
    /// interpreter, which reports the per-row error.
    pub fn from_rows(rows: &[Row]) -> Option<ColumnBatch> {
        let arity = rows.first().map(Row::arity).unwrap_or(0);
        if rows.iter().any(|r| r.arity() != arity) {
            return None;
        }
        let cols = (0..arity).map(|j| Arc::new(build_col(rows, j))).collect();
        Some(ColumnBatch { cols, len: rows.len() })
    }

    /// Number of rows (lanes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-row batch.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The columns, cheaply shareable across pipeline stages.
    pub fn cols(&self) -> &[Arc<Col>] {
        &self.cols
    }
}

/// Builds column `j` from `rows`, sniffing the lane types first.
fn build_col(rows: &[Row], j: usize) -> Col {
    let (mut ints, mut doubles, mut bools, mut others) = (0usize, 0usize, 0usize, 0usize);
    for r in rows {
        match r.value(j) {
            Value::Integer(_) => ints += 1,
            Value::Double(_) => doubles += 1,
            Value::Boolean(_) => bools += 1,
            Value::Null => {}
            _ => others += 1,
        }
    }
    let n = rows.len();
    if others == 0 && ints > 0 && doubles == 0 && bools == 0 {
        let mut data = vec![0i64; n];
        let mut valid = Bitmap::new_invalid(n);
        for (i, r) in rows.iter().enumerate() {
            if let Value::Integer(x) = r.value(j) {
                data[i] = *x;
                valid.set_valid(i);
            }
        }
        Col::I64 { data, valid }
    } else if others == 0 && doubles > 0 && ints == 0 && bools == 0 {
        let mut data = vec![0.0f64; n];
        let mut valid = Bitmap::new_invalid(n);
        for (i, r) in rows.iter().enumerate() {
            if let Value::Double(x) = r.value(j) {
                data[i] = *x;
                valid.set_valid(i);
            }
        }
        Col::F64 { data, valid }
    } else if others == 0 && bools > 0 && ints == 0 && doubles == 0 {
        let mut data = vec![false; n];
        let mut valid = Bitmap::new_invalid(n);
        for (i, r) in rows.iter().enumerate() {
            if let Value::Boolean(x) = r.value(j) {
                data[i] = *x;
                valid.set_valid(i);
            }
        }
        Col::Bool { data, valid }
    } else if others == 0 && ints == 0 && doubles == 0 && bools == 0 {
        // All NULL: typed-but-empty; reconstruction yields Value::Null.
        Col::F64 { data: vec![0.0; n], valid: Bitmap::new_invalid(n) }
    } else {
        Col::Boxed(rows.iter().map(|r| r.value(j).clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_boundaries() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let mut b = Bitmap::new_invalid(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.all_valid(), len == 0);
            for i in 0..len {
                assert!(!b.get(i));
                b.set_valid(i);
                assert!(b.get(i));
            }
            assert!(b.all_valid());
            if len > 0 {
                b.set_invalid(len - 1);
                assert!(!b.all_valid());
                assert!(!b.get(len - 1));
            }
        }
    }

    #[test]
    fn typed_columns_round_trip() {
        let rows = vec![
            Row::new(vec![Value::Integer(1), Value::Double(-0.0), Value::Null]),
            Row::new(vec![Value::Null, Value::Double(2.5), Value::Null]),
            Row::new(vec![Value::Integer(-3), Value::Double(f64::NAN), Value::Null]),
        ];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 3);
        assert!(matches!(*b.cols()[0].as_ref(), Col::I64 { .. }));
        assert!(matches!(*b.cols()[1].as_ref(), Col::F64 { .. }));
        for (i, r) in rows.iter().enumerate() {
            for j in 0..3 {
                let got = b.cols()[j].value_at(i);
                let want = r.value(j);
                // Compare bit patterns so -0.0 and NaN round-trip exactly.
                match (&got, want) {
                    (Value::Double(g), Value::Double(w)) => {
                        assert_eq!(g.to_bits(), w.to_bits())
                    }
                    _ => assert_eq!(&got, want),
                }
            }
        }
    }

    #[test]
    fn mixed_numeric_column_stays_boxed() {
        let rows = vec![
            Row::new(vec![Value::Integer(1)]),
            Row::new(vec![Value::Double(2.0)]),
        ];
        let b = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(*b.cols()[0].as_ref(), Col::Boxed(_)));
        assert_eq!(b.cols()[0].value_at(0), Value::Integer(1));
        assert_eq!(b.cols()[0].value_at(1), Value::Double(2.0));
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = vec![
            Row::new(vec![Value::Integer(1)]),
            Row::new(vec![Value::Integer(1), Value::Integer(2)]),
        ];
        assert!(ColumnBatch::from_rows(&rows).is_none());
    }

    #[test]
    fn splat_matches_literal() {
        for v in [
            Value::Integer(42),
            Value::Double(0.5),
            Value::Boolean(true),
            Value::Null,
            Value::Varchar("x".into()),
        ] {
            let c = Col::splat(&v, 3);
            assert_eq!(c.len(), 3);
            for i in 0..3 {
                assert_eq!(c.value_at(i), v);
            }
        }
    }
}
