//! # lardb-exec — physical operators on a simulated shared-nothing cluster
//!
//! This crate is the execution substrate standing in for SimSQL's
//! Hadoop-based runtime. A [`cluster::Cluster`] models `W` shared-nothing
//! workers; every table and every intermediate result is split into `W`
//! partitions, operators run partition-parallel on real threads
//! (std scoped threads), and data only crosses partitions through explicit
//! **exchange** operators, which meter every row and byte "shuffled" — the
//! simulation's stand-in for network cost. Under
//! [`TransportMode::Serialized`] or [`TransportMode::Tcp`] the exchanges
//! additionally encode every boundary-crossing batch through the
//! `lardb-net` wire codec and ship it over a real channel or loopback
//! socket, metering actual encoded bytes per worker-to-worker channel.
//!
//! Execution is operator-at-a-time materialized, mirroring the MapReduce
//! stage structure of the paper's SimSQL/Hadoop substrate, which also makes
//! per-operator wall-clock attribution trivial — that attribution is what
//! regenerates Figure 4 (join vs aggregation cost in the tuple-based Gram
//! computation).

pub mod agg;
pub mod batch;
pub mod cluster;
pub mod compile;
pub mod eval;
pub mod executor;
pub mod kernels;
pub mod stats;

pub use cluster::{CancelToken, Cluster, SchedulerMode, DEFAULT_MORSEL_ROWS};
pub use compile::ExprEngine;
pub use executor::{ExecutionResult, Executor, MemoryConfig, DEFAULT_BATCH_ROWS};
pub use lardb_net::{FaultKind, FaultPlan, NetConfig, TransportMode};
pub use stats::{BatchStats, ChannelStats, ExecStats, OperatorStats, ShuffleStats, SpillStats};

use lardb_net::NetError;
use lardb_planner::PlanError;
use lardb_storage::StorageError;

/// Errors raised during query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A runtime type or dimension error (e.g. a `VECTOR[]` column holding
    /// a vector of the wrong length for an operation, per §3.1).
    Runtime(String),
    /// Error from the storage layer.
    Storage(StorageError),
    /// Error from expression machinery shared with the planner.
    Plan(PlanError),
    /// The query was aborted: some sibling worker hit an error first and
    /// flipped the query-wide cancellation token, so this worker stopped
    /// at the next morsel / exchange boundary instead of finishing work
    /// whose result will be thrown away.
    Cancelled(String),
    /// The out-of-core path failed: a spill file could not be written,
    /// or was truncated/corrupted when read back.
    Spill(lardb_buf::BufError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Runtime(m) => write!(f, "runtime error: {m}"),
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::Plan(e) => write!(f, "{e}"),
            ExecError::Cancelled(m) => write!(f, "query aborted: {m}"),
            ExecError::Spill(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

impl From<lardb_la::LaError> for ExecError {
    fn from(e: lardb_la::LaError) -> Self {
        ExecError::Storage(StorageError::La(e))
    }
}

impl From<NetError> for ExecError {
    fn from(e: NetError) -> Self {
        ExecError::Runtime(e.to_string())
    }
}

impl From<lardb_buf::BufError> for ExecError {
    fn from(e: lardb_buf::BufError) -> Self {
        ExecError::Spill(e)
    }
}

/// Result alias for the executor.
pub type Result<T> = std::result::Result<T, ExecError>;
