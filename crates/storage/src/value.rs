//! Runtime values for the extended relational model.

use std::sync::Arc;

use lardb_la::{LabeledScalar, Matrix, SparseMatrix, Vector};

use crate::types::DataType;

/// A single attribute value inside a tuple.
///
/// `Vector` and `Matrix` payloads are behind [`Arc`]: the engine copies
/// tuples freely between operators, and sharing makes those copies O(1)
/// regardless of payload size. The exchange operators nonetheless *charge*
/// the full payload size when a tuple crosses a (simulated) machine
/// boundary — see `lardb-exec`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// `INTEGER`.
    Integer(i64),
    /// `DOUBLE`.
    Double(f64),
    /// `BOOLEAN`.
    Boolean(bool),
    /// `VARCHAR`.
    Varchar(Arc<str>),
    /// `LABELED_SCALAR` (§3.3).
    LabeledScalar(LabeledScalar),
    /// `VECTOR` (§3.1).
    Vector(Arc<Vector>),
    /// `MATRIX` (§3.1).
    Matrix(Arc<Matrix>),
    /// A `MATRIX` stored sparsely (CSR). Logically indistinguishable from
    /// [`Value::Matrix`] — same SQL type, equality and arithmetic — but
    /// storage, shuffle and spill accounting are proportional to nnz.
    SparseMatrix(Arc<SparseMatrix>),
}

impl Value {
    /// Convenience constructor wrapping a vector in its `Arc`.
    pub fn vector(v: Vector) -> Value {
        Value::Vector(Arc::new(v))
    }

    /// Convenience constructor wrapping a matrix in its `Arc`.
    pub fn matrix(m: Matrix) -> Value {
        Value::Matrix(Arc::new(m))
    }

    /// Convenience constructor wrapping a sparse matrix in its `Arc`.
    pub fn sparse_matrix(m: SparseMatrix) -> Value {
        Value::SparseMatrix(Arc::new(m))
    }

    /// Convenience constructor for strings.
    pub fn varchar(s: impl Into<Arc<str>>) -> Value {
        Value::Varchar(s.into())
    }

    /// The runtime type of this value, with exact LA dimensions.
    pub fn data_type(&self) -> DataType {
        match self {
            // NULL is typeless; report it as DOUBLE for width purposes.
            Value::Null => DataType::Double,
            Value::Integer(_) => DataType::Integer,
            Value::Double(_) => DataType::Double,
            Value::Boolean(_) => DataType::Boolean,
            Value::Varchar(_) => DataType::Varchar,
            Value::LabeledScalar(_) => DataType::LabeledScalar,
            Value::Vector(v) => DataType::Vector(Some(v.len())),
            Value::Matrix(m) => DataType::Matrix(Some(m.rows()), Some(m.cols())),
            // Sparse is a storage format, not a SQL type: the planner and
            // binder see an ordinary MATRIX with exact dimensions.
            Value::SparseMatrix(m) => DataType::Matrix(Some(m.rows()), Some(m.cols())),
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Payload size in bytes, as charged by shuffle accounting and the
    /// memory governor.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Integer(_) | Value::Double(_) => 8,
            Value::Boolean(_) => 1,
            Value::Varchar(s) => s.len(),
            Value::LabeledScalar(_) => 16,
            Value::Vector(v) => v.byte_size(),
            Value::Matrix(m) => m.byte_size(),
            // nnz-proportional: this is what makes sparse tiles cheap for
            // the memory governor, spill files and shuffle accounting.
            Value::SparseMatrix(m) => m.byte_size(),
        }
    }

    /// Extracts an `i64`, coercing from `DOUBLE` when lossless.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            Value::Double(d) if d.fract() == 0.0 && d.abs() < 9e15 => Some(*d as i64),
            _ => None,
        }
    }

    /// Extracts an `f64` from any scalar numeric value.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::LabeledScalar(s) => Some(s.value),
            _ => None,
        }
    }

    /// Extracts the string payload of a `VARCHAR`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_boolean(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts the vector payload.
    pub fn as_vector(&self) -> Option<&Arc<Vector>> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts the matrix payload.
    pub fn as_matrix(&self) -> Option<&Arc<Matrix>> {
        match self {
            Value::Matrix(m) => Some(m),
            _ => None,
        }
    }

    /// Extracts the sparse matrix payload.
    pub fn as_sparse_matrix(&self) -> Option<&Arc<SparseMatrix>> {
        match self {
            Value::SparseMatrix(m) => Some(m),
            _ => None,
        }
    }

    /// True when the value is a matrix in either representation.
    pub fn is_matrix_like(&self) -> bool {
        matches!(self, Value::Matrix(_) | Value::SparseMatrix(_))
    }

    /// A dense matrix view of either matrix representation. Dense values
    /// share their `Arc`; sparse values materialize (the caller should
    /// count that via `lardb_la::dispatch` when it happens on a kernel
    /// path).
    pub fn to_dense_matrix(&self) -> Option<Arc<Matrix>> {
        match self {
            Value::Matrix(m) => Some(Arc::clone(m)),
            Value::SparseMatrix(m) => Some(Arc::new(m.to_dense())),
            _ => None,
        }
    }

    /// Extracts the labeled scalar payload.
    pub fn as_labeled_scalar(&self) -> Option<LabeledScalar> {
        match self {
            Value::LabeledScalar(s) => Some(*s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Integer(a), Integer(b)) => a == b,
            (Double(a), Double(b)) => a == b,
            (Integer(a), Double(b)) | (Double(b), Integer(a)) => *a as f64 == *b,
            (Boolean(a), Boolean(b)) => a == b,
            (Varchar(a), Varchar(b)) => a == b,
            (LabeledScalar(a), LabeledScalar(b)) => a == b,
            (Vector(a), Vector(b)) => a == b,
            (Matrix(a), Matrix(b)) => a == b,
            // Sparse equality is logical, not structural: explicit zeros
            // and representation differences must not break equality, so
            // both sides compare through the dense element semantics.
            (SparseMatrix(a), SparseMatrix(b)) => {
                a.shape() == b.shape() && a.to_dense() == b.to_dense()
            }
            (SparseMatrix(s), Matrix(m)) | (Matrix(m), SparseMatrix(s)) => {
                s.shape() == m.shape() && s.to_dense() == **m
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Varchar(s) => write!(f, "{s}"),
            Value::LabeledScalar(s) => write!(f, "{s}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                let show = v.len().min(8);
                for (i, x) in v.as_slice()[..show].iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x:.4}")?;
                }
                if v.len() > show {
                    write!(f, ", … ({} entries)", v.len())?;
                }
                write!(f, "]")
            }
            Value::Matrix(m) => write!(f, "MATRIX[{}][{}]", m.rows(), m.cols()),
            Value::SparseMatrix(m) => {
                write!(f, "SPARSE_MATRIX[{}][{}] nnz={}", m.rows(), m.cols(), m.nnz())
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::varchar(v)
    }
}

impl From<Vector> for Value {
    fn from(v: Vector) -> Self {
        Value::vector(v)
    }
}

impl From<Matrix> for Value {
    fn from(v: Matrix) -> Self {
        Value::matrix(v)
    }
}

impl From<LabeledScalar> for Value {
    fn from(v: LabeledScalar) -> Self {
        Value::LabeledScalar(v)
    }
}

impl From<SparseMatrix> for Value {
    fn from(v: SparseMatrix) -> Self {
        Value::sparse_matrix(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_reports_exact_dims() {
        let v = Value::vector(Vector::zeros(7));
        assert_eq!(v.data_type(), DataType::Vector(Some(7)));
        let m = Value::matrix(Matrix::zeros(2, 3));
        assert_eq!(m.data_type(), DataType::Matrix(Some(2), Some(3)));
    }

    #[test]
    fn numeric_extraction_and_coercion() {
        assert_eq!(Value::Integer(3).as_double(), Some(3.0));
        assert_eq!(Value::Double(3.0).as_integer(), Some(3));
        assert_eq!(Value::Double(3.5).as_integer(), None);
        assert_eq!(Value::varchar("x").as_double(), None);
        assert_eq!(Value::LabeledScalar(LabeledScalar::new(2.0, 1)).as_double(), Some(2.0));
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Integer(2), Value::Double(2.0));
        assert_ne!(Value::Integer(2), Value::Double(2.5));
        assert_ne!(Value::Integer(2), Value::varchar("2"));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Integer(1).byte_size(), 8);
        assert_eq!(Value::matrix(Matrix::zeros(10, 10)).byte_size(), 800);
        assert_eq!(Value::vector(Vector::zeros(10)).byte_size(), 88);
    }

    #[test]
    fn arc_sharing_is_shallow() {
        let m = Value::matrix(Matrix::zeros(100, 100));
        let m2 = m.clone();
        let (a, b) = (m.as_matrix().unwrap(), m2.as_matrix().unwrap());
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn display_truncates_long_vectors() {
        let v = Value::vector(Vector::zeros(100));
        let s = v.to_string();
        assert!(s.contains("(100 entries)"));
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
