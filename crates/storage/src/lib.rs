//! # lardb-storage — the relational storage layer
//!
//! This crate holds the relational data model of the lardb engine, extended
//! exactly as the paper proposes: alongside the classical SQL types, a
//! column may be of type `LABELED_SCALAR`, `VECTOR[n]` or `MATRIX[r][c]`
//! (§3.1), with the size parameters optionally unknown (`VECTOR[]`,
//! `MATRIX[10][]`).
//!
//! Contents:
//!
//! * [`DataType`] / [`Value`] — the type lattice and runtime values. LA
//!   values are `Arc`-shared so that copying a tuple never deep-copies an
//!   80 MB matrix; only the exchange operators charge full byte size, the
//!   way a real network shuffle would.
//! * [`ops`] — the overloaded `+ - * /` semantics of §3.2, including
//!   scalar↔vector/matrix broadcasting, plus comparisons and group-key
//!   hashing.
//! * [`Schema`] / [`Column`] — named, optionally qualified columns.
//! * [`Table`] — a horizontally partitioned heap; partitioning models the
//!   shared-nothing placement of tuples on the simulated cluster.
//! * [`Catalog`] — table and view registry with per-table statistics.
//! * [`gen`] — deterministic synthetic data generators for the paper's
//!   three workloads.

pub mod catalog;
pub mod gen;
pub mod ops;
pub mod row;
pub mod schema;
pub mod table;
pub mod types;
pub mod value;

pub use catalog::{Catalog, MatViewDef, TableStats};
pub use row::Row;
pub use schema::{Column, Schema};
pub use table::{Partitioning, Table};
pub use types::DataType;
pub use value::Value;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A value did not match the declared column type.
    TypeMismatch {
        /// What was being attempted.
        context: String,
    },
    /// Unknown table or view.
    NoSuchTable(String),
    /// A table or view with this name already exists.
    DuplicateTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// A bare column name matched more than one qualified column.
    AmbiguousColumn(String),
    /// Row arity did not match the schema.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values in the offending row.
        got: usize,
    },
    /// An error bubbled up from the linear-algebra kernel.
    La(lardb_la::LaError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            StorageError::NoSuchTable(t) => write!(f, "no such table or view: {t}"),
            StorageError::DuplicateTable(t) => write!(f, "table or view already exists: {t}"),
            StorageError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StorageError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            StorageError::La(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<lardb_la::LaError> for StorageError {
    fn from(e: lardb_la::LaError) -> Self {
        StorageError::La(e)
    }
}

/// Result alias for the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;
