//! Tuples.

use crate::value::Value;

/// One tuple. Cloning a row is cheap: LA payloads are `Arc`-shared.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Builds a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Attribute at position `i`; panics when out of range (the planner
    /// guarantees positions are valid by construction).
    #[inline]
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All attributes.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Appends the attributes of `other` — the row-level concatenation a
    /// join performs.
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Projects positions `indices` into a fresh row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row { values: indices.iter().map(|&i| self.values[i].clone()).collect() }
    }

    /// Total payload size in bytes (what a shuffle of this row would cost).
    pub fn byte_size(&self) -> usize {
        self.values.iter().map(Value::byte_size).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Row::new(vec![Value::Integer(3)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.value(2), &Value::Integer(3));
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Integer(3), Value::Integer(1)]);
    }

    #[test]
    fn byte_size_sums_values() {
        let r = Row::new(vec![Value::Integer(1), Value::Boolean(true)]);
        assert_eq!(r.byte_size(), 9);
    }

    #[test]
    fn display_row() {
        let r = Row::new(vec![Value::Integer(1), Value::varchar("hi")]);
        assert_eq!(r.to_string(), "(1, hi)");
    }
}
