//! Tuples.

use std::sync::Arc;

use crate::value::Value;

/// One tuple. The attribute slice is `Arc`-shared, so cloning a row —
/// which replicated scans, broadcasts, and gather-replica exchanges do
/// for every worker — is a refcount bump, not a value copy. (LA payloads
/// inside [`Value`] are additionally `Arc`-shared on their own.)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Arc<Vec<Value>>,
}

impl Row {
    /// Builds a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values: Arc::new(values) }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Attribute at position `i`; panics when out of range (the planner
    /// guarantees positions are valid by construction).
    #[inline]
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All attributes.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row, yielding its values. Free when this row holds
    /// the last reference to its attribute slice; clones otherwise.
    pub fn into_values(self) -> Vec<Value> {
        match Arc::try_unwrap(self.values) {
            Ok(values) => values,
            Err(shared) => shared.as_slice().to_vec(),
        }
    }

    /// Appends the attributes of `other` — the row-level concatenation a
    /// join performs.
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Projects positions `indices` into a fresh row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Total payload size in bytes (what a shuffle of this row would cost).
    pub fn byte_size(&self) -> usize {
        self.values.iter().map(Value::byte_size).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Row::new(vec![Value::Integer(3)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.value(2), &Value::Integer(3));
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Integer(3), Value::Integer(1)]);
    }

    #[test]
    fn byte_size_sums_values() {
        let r = Row::new(vec![Value::Integer(1), Value::Boolean(true)]);
        assert_eq!(r.byte_size(), 9);
    }

    #[test]
    fn display_row() {
        let r = Row::new(vec![Value::Integer(1), Value::varchar("hi")]);
        assert_eq!(r.to_string(), "(1, hi)");
    }

    #[test]
    fn clone_shares_storage() {
        let r = Row::new(vec![Value::Integer(7), Value::varchar("x")]);
        let c = r.clone();
        assert!(std::ptr::eq(r.values(), c.values()));
        assert_eq!(r, c);
    }

    #[test]
    fn into_values_round_trips() {
        let vals = vec![Value::Integer(1), Value::Double(2.5)];
        // Unique reference: values move out.
        assert_eq!(Row::new(vals.clone()).into_values(), vals);
        // Shared reference: values are copied out, original unaffected.
        let r = Row::new(vals.clone());
        let keep = r.clone();
        assert_eq!(r.into_values(), vals);
        assert_eq!(keep.values(), vals.as_slice());
    }
}
