//! Horizontally partitioned tables.

use crate::ops::KeyValue;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::{Result, StorageError};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How a table's rows are placed across the simulated cluster's workers.
///
/// Placement matters the same way it does in the paper's §2.1 discussion: a
/// join can avoid a shuffle when its input is already partitioned on the
/// join key, and the optimizer exploits that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// Rows dealt to workers in arrival order.
    RoundRobin,
    /// Rows placed by hash of the column at this position.
    Hash(usize),
    /// Every worker holds the full table (small dimension tables).
    Replicated,
}

/// A heap table, split into one row vector per worker.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    partitioning: Partitioning,
    partitions: Vec<Vec<Row>>,
}

impl Table {
    /// Creates an empty table with `num_partitions` empty partitions.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        num_partitions: usize,
        partitioning: Partitioning,
    ) -> Self {
        assert!(num_partitions > 0, "a table needs at least one partition");
        Table {
            name: name.into(),
            schema,
            partitioning,
            partitions: vec![Vec::new(); num_partitions],
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partitioning scheme rows were placed with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of partitions (== workers of the simulated cluster).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Rows of one partition.
    pub fn partition(&self, i: usize) -> &[Row] {
        &self.partitions[i]
    }

    /// Total row count across partitions.
    pub fn num_rows(&self) -> usize {
        match self.partitioning {
            Partitioning::Replicated => self.partitions.first().map_or(0, Vec::len),
            _ => self.partitions.iter().map(Vec::len).sum(),
        }
    }

    /// Total payload bytes (replicated tables count one copy).
    pub fn byte_size(&self) -> usize {
        match self.partitioning {
            Partitioning::Replicated => {
                self.partitions.first().map_or(0, |p| p.iter().map(Row::byte_size).sum())
            }
            _ => self
                .partitions
                .iter()
                .flat_map(|p| p.iter())
                .map(Row::byte_size)
                .sum(),
        }
    }

    /// Validates a row against the schema (arity + per-column type, with
    /// unknown LA dims accepting any size, per §3.1).
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.arity(),
            });
        }
        for (i, v) in row.values().iter().enumerate() {
            if v.is_null() {
                continue;
            }
            let declared = self.schema.column(i).dtype;
            if !declared.accepts(&v.data_type()) {
                return Err(StorageError::TypeMismatch {
                    context: format!(
                        "column {} declared {} got {} in table {}",
                        self.schema.column(i).full_name(),
                        declared,
                        v.data_type(),
                        self.name
                    ),
                });
            }
        }
        Ok(())
    }

    /// Coerces values to declared column types where SQL allows it
    /// (INTEGER → DOUBLE).
    fn coerce_row(&self, row: Row) -> Row {
        let needs_coercion = row.values().iter().enumerate().any(|(i, v)| {
            matches!(v, Value::Integer(_))
                && i < self.schema.arity()
                && self.schema.column(i).dtype == crate::types::DataType::Double
        });
        if !needs_coercion {
            return row;
        }
        let values = row
            .into_values()
            .into_iter()
            .enumerate()
            .map(|(i, v)| match (&v, self.schema.column(i).dtype) {
                (Value::Integer(x), crate::types::DataType::Double) => {
                    Value::Double(*x as f64)
                }
                _ => v,
            })
            .collect();
        Row::new(values)
    }

    /// Inserts one row according to the table's partitioning. Integer
    /// values destined for DOUBLE columns are coerced, as in standard SQL.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        let row = self.coerce_row(row);
        self.validate_row(&row)?;
        match &self.partitioning {
            Partitioning::RoundRobin => {
                // Deal to the currently shortest partition: equivalent to
                // round-robin under bulk load, and robust to interleaving.
                let idx = self
                    .partitions
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| p.len())
                    .map(|(i, _)| i)
                    .expect("at least one partition");
                self.partitions[idx].push(row);
            }
            Partitioning::Hash(col) => {
                let idx = hash_partition(row.value(*col), self.partitions.len());
                self.partitions[idx].push(row);
            }
            Partitioning::Replicated => {
                for p in &mut self.partitions {
                    p.push(row.clone());
                }
            }
        }
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Iterates all rows (one replica for replicated tables).
    pub fn iter_rows(&self) -> impl Iterator<Item = &Row> {
        let upto = match self.partitioning {
            Partitioning::Replicated => 1,
            _ => self.partitions.len(),
        };
        self.partitions[..upto].iter().flat_map(|p| p.iter())
    }
}

/// Stable partition assignment by key hash.
pub fn hash_partition(v: &Value, num_partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    KeyValue(v.clone()).hash(&mut h);
    (h.finish() % num_partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use lardb_la::Vector;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Vector(None))])
    }

    fn row(id: i64, len: usize) -> Row {
        Row::new(vec![Value::Integer(id), Value::vector(Vector::zeros(len))])
    }

    #[test]
    fn round_robin_balances() {
        let mut t = Table::new("t", schema(), 4, Partitioning::RoundRobin);
        t.insert_all((0..8).map(|i| row(i, 3))).unwrap();
        for p in 0..4 {
            assert_eq!(t.partition(p).len(), 2);
        }
        assert_eq!(t.num_rows(), 8);
    }

    #[test]
    fn hash_partitioning_is_deterministic_and_colocates() {
        let mut t = Table::new("t", schema(), 4, Partitioning::Hash(0));
        t.insert(row(42, 3)).unwrap();
        t.insert(row(42, 5)).unwrap();
        let p = hash_partition(&Value::Integer(42), 4);
        assert_eq!(t.partition(p).len(), 2);
    }

    #[test]
    fn replicated_copies_everywhere() {
        let mut t = Table::new("t", schema(), 3, Partitioning::Replicated);
        t.insert(row(1, 2)).unwrap();
        for p in 0..3 {
            assert_eq!(t.partition(p).len(), 1);
        }
        // logical row count is 1
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.iter_rows().count(), 1);
    }

    #[test]
    fn unknown_vector_dim_accepts_any_length() {
        let mut t = Table::new("t", schema(), 1, Partitioning::RoundRobin);
        t.insert(row(1, 3)).unwrap();
        t.insert(row(2, 99)).unwrap(); // VECTOR[] admits both
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn sized_vector_dim_rejects_wrong_length() {
        let s = Schema::from_pairs(&[("v", DataType::Vector(Some(10)))]);
        let mut t = Table::new("t", s, 1, Partitioning::RoundRobin);
        assert!(t.insert(Row::new(vec![Value::vector(Vector::zeros(10))])).is_ok());
        let err = t.insert(Row::new(vec![Value::vector(Vector::zeros(11))]));
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("t", schema(), 1, Partitioning::RoundRobin);
        let err = t.insert(Row::new(vec![Value::Integer(1)]));
        assert!(matches!(err, Err(StorageError::ArityMismatch { expected: 2, got: 1 })));
    }

    #[test]
    fn null_passes_validation() {
        let mut t = Table::new("t", schema(), 1, Partitioning::RoundRobin);
        t.insert(Row::new(vec![Value::Null, Value::Null])).unwrap();
        assert_eq!(t.num_rows(), 1);
    }
}
