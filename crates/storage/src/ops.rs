//! Overloaded arithmetic, comparison and hashing over [`Value`]s.
//!
//! This module implements §3.2 of the paper: "the standard arithmetic
//! operations `+ - * /` (element-wise) are also defined over MATRIX and
//! VECTOR types", and "arithmetic between a scalar value and a MATRIX or
//! VECTOR type performs the arithmetic operation between the scalar and
//! every entry". `SUM`, `MIN` and `MAX` aggregates build on the same
//! element-wise kernels.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

use lardb_la::{Matrix, Vector};

use crate::value::Value;
use crate::{Result, StorageError};

/// A binary arithmetic operator of the SQL surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// Operator symbol as written in SQL.
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }

    fn apply_f64(&self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
        }
    }
}

/// Evaluates `lhs OP rhs` with the full overload matrix of §3.2.
///
/// NULL propagates. `INTEGER op INTEGER` stays integral (with SQL's
/// truncating division — the paper's own blocking query relies on
/// `x.id/1000` being integer division); any DOUBLE operand promotes the
/// result to DOUBLE. LABELED_SCALAR operands participate as their DOUBLE
/// payload and the label is dropped, matching SimSQL.
pub fn arith(op: ArithOp, lhs: &Value, rhs: &Value) -> Result<Value> {
    use Value::*;
    match (lhs, rhs) {
        (Null, _) | (_, Null) => Ok(Null),

        (Integer(a), Integer(b)) => Ok(match op {
            ArithOp::Add => Integer(a + b),
            ArithOp::Sub => Integer(a - b),
            ArithOp::Mul => Integer(a * b),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(StorageError::TypeMismatch {
                        context: "integer division by zero".into(),
                    });
                }
                Integer(a / b)
            }
        }),

        // Vector ⊕ Vector (element-wise).
        (Vector(a), Vector(b)) => {
            let out = match op {
                ArithOp::Add => a.add(b),
                ArithOp::Sub => a.sub(b),
                ArithOp::Mul => a.mul(b),
                ArithOp::Div => a.div(b),
            }?;
            Ok(Value::vector(out))
        }

        // Matrix ⊕ Matrix (element-wise; `mat * mat` is the Hadamard
        // product in §3.2).
        (Matrix(a), Matrix(b)) => {
            let out = match op {
                ArithOp::Add => a.add(b),
                ArithOp::Sub => a.sub(b),
                ArithOp::Mul => a.mul(b),
                ArithOp::Div => a.div(b),
            }?;
            Ok(Value::matrix(out))
        }

        // Sparse ⊕ sparse: add/sub/Hadamard are O(nnz) row merges and stay
        // sparse; division densifies because implicit zeros divide to the
        // NaN/±inf the dense loop computes.
        (SparseMatrix(a), SparseMatrix(b)) => Ok(match op {
            ArithOp::Add => Value::sparse_matrix(a.add(b)?),
            ArithOp::Sub => Value::sparse_matrix(a.sub(b)?),
            ArithOp::Mul => Value::sparse_matrix(a.hadamard(b)?),
            ArithOp::Div => Value::matrix(densify(a).div(&densify(b))?),
        }),

        // Sparse ⊕ dense matrix: the Hadamard product keeps only stored
        // coordinates (implicit zeros annihilate `×` on finite data, the
        // documented sparse contract); everything else densifies since the
        // result is dense anyway.
        (SparseMatrix(a), Matrix(b)) => Ok(match op {
            ArithOp::Mul => Value::sparse_matrix(a.hadamard_dense(b)?),
            ArithOp::Add => Value::matrix(densify(a).add(b)?),
            ArithOp::Sub => Value::matrix(densify(a).sub(b)?),
            ArithOp::Div => Value::matrix(densify(a).div(b)?),
        }),
        (Matrix(a), SparseMatrix(b)) => Ok(match op {
            // x·y == y·x element-wise, so reuse the sparse-side kernel.
            ArithOp::Mul => Value::sparse_matrix(b.hadamard_dense(a)?),
            ArithOp::Add => Value::matrix(a.add(&densify(b))?),
            ArithOp::Sub => Value::matrix(a.sub(&densify(b))?),
            ArithOp::Div => Value::matrix(a.div(&densify(b))?),
        }),

        // Scalar broadcast over vectors.
        (Vector(v), s) if s.as_double().is_some() => {
            let s = s.as_double().expect("checked");
            Ok(Value::vector(broadcast_vec(op, v, s, false)))
        }
        (s, Vector(v)) if s.as_double().is_some() => {
            let s = s.as_double().expect("checked");
            Ok(Value::vector(broadcast_vec(op, v, s, true)))
        }

        // Scalar broadcast over matrices.
        (Matrix(m), s) if s.as_double().is_some() => {
            let s = s.as_double().expect("checked");
            Ok(Value::matrix(broadcast_mat(op, m, s, false)))
        }
        (s, Matrix(m)) if s.as_double().is_some() => {
            let s = s.as_double().expect("checked");
            Ok(Value::matrix(broadcast_mat(op, m, s, true)))
        }

        // Scalar broadcast over sparse matrices: `× s` and `/ s` (s ≠ 0)
        // map implicit zeros to ±0.0 and stay sparse; `+ s`, `- s` and
        // division by zero change every element and densify.
        (SparseMatrix(m), s) if s.as_double().is_some() => {
            let s = s.as_double().expect("checked");
            Ok(match op {
                ArithOp::Mul => Value::sparse_matrix(m.scalar_mul(s)),
                ArithOp::Div if s != 0.0 => {
                    Value::sparse_matrix(m.map_values(|x| x / s))
                }
                _ => Value::matrix(broadcast_mat(op, &densify(m), s, false)),
            })
        }
        (s, SparseMatrix(m)) if s.as_double().is_some() => {
            let s = s.as_double().expect("checked");
            Ok(match op {
                ArithOp::Mul => Value::sparse_matrix(m.scalar_mul(s)),
                _ => Value::matrix(broadcast_mat(op, &densify(m), s, true)),
            })
        }

        // Remaining scalar numerics promote to DOUBLE.
        (a, b) => match (a.as_double(), b.as_double()) {
            (Some(x), Some(y)) => Ok(Double(op.apply_f64(x, y))),
            _ => Err(StorageError::TypeMismatch {
                context: format!(
                    "cannot apply {} to {} and {}",
                    op.symbol(),
                    a.data_type(),
                    b.data_type()
                ),
            }),
        },
    }
}

fn broadcast_vec(op: ArithOp, v: &Vector, s: f64, scalar_on_left: bool) -> Vector {
    if scalar_on_left {
        v.map(|x| op.apply_f64(s, x))
    } else {
        v.map(|x| op.apply_f64(x, s))
    }
}

fn broadcast_mat(op: ArithOp, m: &Matrix, s: f64, scalar_on_left: bool) -> Matrix {
    if scalar_on_left {
        m.map(|x| op.apply_f64(s, x))
    } else {
        m.map(|x| op.apply_f64(x, s))
    }
}

/// Materializes a sparse tile for a dense element-wise path, counting the
/// densification in the dispatch-choice metrics.
fn densify(s: &lardb_la::SparseMatrix) -> Matrix {
    lardb_la::dispatch::note_kernel(lardb_la::dispatch::Kernel::Densified);
    s.to_dense()
}

/// Unary minus.
pub fn negate(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Integer(i) => Ok(Value::Integer(-i)),
        Value::Double(d) => Ok(Value::Double(-d)),
        Value::Vector(x) => Ok(Value::vector(x.scalar_mul(-1.0))),
        Value::Matrix(x) => Ok(Value::matrix(x.scalar_mul(-1.0))),
        Value::SparseMatrix(x) => Ok(Value::sparse_matrix(x.scalar_mul(-1.0))),
        other => Err(StorageError::TypeMismatch {
            context: format!("cannot negate {}", other.data_type()),
        }),
    }
}

/// Three-valued-logic-free comparison used by predicates and ORDER BY.
/// Returns `None` when the values are incomparable (e.g. a NULL operand or
/// mixed string/number) — predicates treat that as FALSE.
pub fn compare(lhs: &Value, rhs: &Value) -> Option<Ordering> {
    use Value::*;
    match (lhs, rhs) {
        (Null, _) | (_, Null) => None,
        (Varchar(a), Varchar(b)) => Some(a.cmp(b)),
        (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
        (a, b) => {
            let (x, y) = (a.as_double()?, b.as_double()?);
            x.partial_cmp(&y)
        }
    }
}

/// A hashable, equatable wrapper over [`Value`] for hash-join and group-by
/// keys. Doubles hash by bit pattern (with `-0.0` normalized to `0.0`) and
/// integers that equal a double hash identically, so `1` and `1.0` land in
/// the same bucket — matching [`Value`]'s cross-type equality.
#[derive(Debug, Clone)]
pub struct KeyValue(pub Value);

impl PartialEq for KeyValue {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for KeyValue {}

impl Hash for KeyValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match &self.0 {
            Value::Null => state.write_u8(0),
            Value::Integer(i) => {
                state.write_u8(1);
                canonical_f64_hash(*i as f64, state);
            }
            Value::Double(d) => {
                state.write_u8(1);
                canonical_f64_hash(*d, state);
            }
            Value::Boolean(b) => {
                state.write_u8(2);
                b.hash(state);
            }
            Value::Varchar(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::LabeledScalar(s) => {
                state.write_u8(4);
                canonical_f64_hash(s.value, state);
                s.label.hash(state);
            }
            Value::Vector(v) => {
                state.write_u8(5);
                for &x in v.as_slice() {
                    canonical_f64_hash(x, state);
                }
            }
            Value::Matrix(m) => {
                state.write_u8(6);
                state.write_usize(m.rows());
                for &x in m.as_slice() {
                    canonical_f64_hash(x, state);
                }
            }
            // Same tag and element stream as the dense arm: a sparse
            // matrix equals its dense counterpart, so it must hash
            // identically too.
            Value::SparseMatrix(m) => {
                state.write_u8(6);
                state.write_usize(m.rows());
                for &x in m.to_dense().as_slice() {
                    canonical_f64_hash(x, state);
                }
            }
        }
    }
}

fn canonical_f64_hash<H: Hasher>(x: f64, state: &mut H) {
    let x = if x == 0.0 { 0.0 } else { x }; // fold -0.0 into 0.0
    state.write_u64(x.to_bits());
}

/// Composite key over several values, used for multi-column GROUP BY and
/// join keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompositeKey(pub Vec<KeyValueWrapper>);

/// Internal alias to keep `CompositeKey` derivable.
pub type KeyValueWrapper = KeyValue;

impl CompositeKey {
    /// Builds a key from a row projection.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        CompositeKey(values.into_iter().map(KeyValue).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::LabeledScalar;
    use std::collections::hash_map::DefaultHasher;

    fn h<T: Hash>(t: &T) -> u64 {
        let mut s = DefaultHasher::new();
        t.hash(&mut s);
        s.finish()
    }

    #[test]
    fn integer_arith_stays_integer() {
        assert_eq!(arith(ArithOp::Add, &Value::Integer(2), &Value::Integer(3)).unwrap(), Value::Integer(5));
        // truncating division, as the paper's blocking query needs
        assert_eq!(arith(ArithOp::Div, &Value::Integer(1999), &Value::Integer(1000)).unwrap(), Value::Integer(1));
        assert!(arith(ArithOp::Div, &Value::Integer(1), &Value::Integer(0)).is_err());
    }

    #[test]
    fn mixed_promotes_to_double() {
        assert_eq!(
            arith(ArithOp::Mul, &Value::Integer(2), &Value::Double(1.5)).unwrap(),
            Value::Double(3.0)
        );
    }

    #[test]
    fn null_propagates() {
        assert!(arith(ArithOp::Add, &Value::Null, &Value::Integer(1)).unwrap().is_null());
        assert!(arith(ArithOp::Div, &Value::Double(1.0), &Value::Null).unwrap().is_null());
    }

    #[test]
    fn vector_vector_elementwise() {
        let a = Value::vector(Vector::from_slice(&[1.0, 2.0]));
        let b = Value::vector(Vector::from_slice(&[3.0, 4.0]));
        let s = arith(ArithOp::Sub, &b, &a).unwrap();
        assert_eq!(s.as_vector().unwrap().as_slice(), &[2.0, 2.0]);
        let bad = Value::vector(Vector::zeros(3));
        assert!(arith(ArithOp::Add, &a, &bad).is_err());
    }

    #[test]
    fn scalar_vector_broadcast_both_sides() {
        let v = Value::vector(Vector::from_slice(&[2.0, 4.0]));
        // X.x_i * y_i from the paper's regression query
        let r = arith(ArithOp::Mul, &v, &Value::Double(0.5)).unwrap();
        assert_eq!(r.as_vector().unwrap().as_slice(), &[1.0, 2.0]);
        // scalar on the left of a subtraction is NOT commutative
        let l = arith(ArithOp::Sub, &Value::Double(10.0), &v).unwrap();
        assert_eq!(l.as_vector().unwrap().as_slice(), &[8.0, 6.0]);
    }

    #[test]
    fn matrix_hadamard_and_broadcast() {
        let m = Value::matrix(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap());
        let h2 = arith(ArithOp::Mul, &m, &m).unwrap();
        assert_eq!(h2.as_matrix().unwrap().get(1, 1).unwrap(), 16.0);
        let shifted = arith(ArithOp::Add, &Value::Integer(1), &m).unwrap();
        assert_eq!(shifted.as_matrix().unwrap().get(0, 0).unwrap(), 2.0);
    }

    #[test]
    fn vector_matrix_mix_rejected() {
        let v = Value::vector(Vector::zeros(2));
        let m = Value::matrix(Matrix::zeros(2, 2));
        assert!(arith(ArithOp::Add, &v, &m).is_err());
    }

    #[test]
    fn labeled_scalar_acts_as_double() {
        let ls = Value::LabeledScalar(LabeledScalar::new(2.0, 7));
        let r = arith(ArithOp::Mul, &ls, &Value::Double(3.0)).unwrap();
        assert_eq!(r, Value::Double(6.0));
    }

    #[test]
    fn negate_values() {
        assert_eq!(negate(&Value::Integer(2)).unwrap(), Value::Integer(-2));
        let v = negate(&Value::vector(Vector::ones(2))).unwrap();
        assert_eq!(v.as_vector().unwrap().as_slice(), &[-1.0, -1.0]);
        assert!(negate(&Value::varchar("x")).is_err());
        assert!(negate(&Value::Null).unwrap().is_null());
    }

    #[test]
    fn compare_semantics() {
        assert_eq!(compare(&Value::Integer(1), &Value::Double(2.0)), Some(Ordering::Less));
        assert_eq!(compare(&Value::varchar("a"), &Value::varchar("b")), Some(Ordering::Less));
        assert_eq!(compare(&Value::Null, &Value::Integer(1)), None);
        assert_eq!(compare(&Value::varchar("a"), &Value::Integer(1)), None);
    }

    #[test]
    fn key_hash_integer_double_coherence() {
        // 1 == 1.0 must also hash equal for hash joins on mixed columns.
        assert_eq!(KeyValue(Value::Integer(1)), KeyValue(Value::Double(1.0)));
        assert_eq!(h(&KeyValue(Value::Integer(1))), h(&KeyValue(Value::Double(1.0))));
        // -0.0 and 0.0
        assert_eq!(h(&KeyValue(Value::Double(-0.0))), h(&KeyValue(Value::Double(0.0))));
    }

    #[test]
    fn sparse_arith_matches_dense() {
        use lardb_la::CooBuilder;
        let mut b = CooBuilder::new();
        b.push(0, 1, 2.0).unwrap();
        b.push(1, 0, -3.0).unwrap();
        let s = b.build(2, 2).unwrap();
        let sv = Value::sparse_matrix(s.clone());
        let dv = Value::matrix(s.to_dense());

        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul] {
            let sparse = arith(op, &sv, &sv).unwrap();
            let dense = arith(op, &dv, &dv).unwrap();
            assert_eq!(sparse, dense, "{op:?}");
            // Mixed representations too, both sides.
            assert_eq!(arith(op, &sv, &dv).unwrap(), dense, "{op:?} mixed");
            assert_eq!(arith(op, &dv, &sv).unwrap(), dense, "{op:?} mixed rev");
        }
        // Division densifies (0/0 → NaN on implicit zeros), result dense.
        let q = arith(ArithOp::Div, &sv, &sv).unwrap();
        assert!(q.as_matrix().is_some());
        assert!(q.as_matrix().unwrap().get(0, 0).unwrap().is_nan());

        // Scalar broadcast: × and / (nonzero) stay sparse, + densifies.
        let scaled = arith(ArithOp::Mul, &sv, &Value::Double(2.0)).unwrap();
        assert!(scaled.as_sparse_matrix().is_some());
        assert_eq!(scaled, arith(ArithOp::Mul, &dv, &Value::Double(2.0)).unwrap());
        let halved = arith(ArithOp::Div, &sv, &Value::Double(2.0)).unwrap();
        assert!(halved.as_sparse_matrix().is_some());
        assert_eq!(halved, arith(ArithOp::Div, &dv, &Value::Double(2.0)).unwrap());
        let shifted = arith(ArithOp::Add, &sv, &Value::Integer(1)).unwrap();
        assert!(shifted.as_matrix().is_some());
        assert_eq!(shifted, arith(ArithOp::Add, &dv, &Value::Integer(1)).unwrap());
        // Scalar on the left of `-` is not commutative; densified path.
        let l = arith(ArithOp::Sub, &Value::Double(10.0), &sv).unwrap();
        assert_eq!(l, arith(ArithOp::Sub, &Value::Double(10.0), &dv).unwrap());

        // Negation stays sparse and equals dense negation.
        let n = negate(&sv).unwrap();
        assert!(n.as_sparse_matrix().is_some());
        assert_eq!(n, negate(&dv).unwrap());
    }

    #[test]
    fn sparse_hashes_like_its_dense_equal() {
        use lardb_la::CooBuilder;
        let mut b = CooBuilder::new();
        b.push(0, 0, 1.0).unwrap();
        b.push(2, 1, 4.5).unwrap();
        let s = b.build(3, 2).unwrap();
        let sv = Value::sparse_matrix(s.clone());
        let dv = Value::matrix(s.to_dense());
        assert_eq!(KeyValue(sv.clone()), KeyValue(dv.clone()));
        assert_eq!(h(&KeyValue(sv)), h(&KeyValue(dv)));
    }

    #[test]
    fn composite_key_groups() {
        use std::collections::HashMap;
        let mut m: HashMap<CompositeKey, i32> = HashMap::new();
        let k1 = CompositeKey::from_values([Value::Integer(1), Value::varchar("x")]);
        let k2 = CompositeKey::from_values([Value::Integer(1), Value::varchar("x")]);
        m.insert(k1, 10);
        assert_eq!(m.get(&k2), Some(&10));
    }
}
