//! Schemas: named, optionally table-qualified, typed columns.

use crate::types::DataType;
use crate::{Result, StorageError};

/// One column of a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Table alias or name this column belongs to, when known. Join outputs
    /// keep each side's qualifier so `x1.value` and `x2.value` stay
    /// distinguishable, as in the paper's self-join queries.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Declared or inferred type.
    pub dtype: DataType,
}

impl Column {
    /// Unqualified column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column { qualifier: None, name: name.into(), dtype }
    }

    /// Qualified column.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        dtype: DataType,
    ) -> Self {
        Column { qualifier: Some(qualifier.into()), name: name.into(), dtype }
    }

    /// `qualifier.name`, or just `name` when unqualified.
    pub fn full_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Returns a copy with every column's qualifier replaced by `alias` —
    /// what `FROM data AS x1` does to the base table's schema.
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::qualified(alias, c.name.clone(), c.dtype))
                .collect(),
        }
    }

    /// Concatenation, as a join produces.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend_from_slice(&other.columns);
        Schema { columns }
    }

    /// Resolves a possibly-qualified column reference to its position.
    ///
    /// A qualified reference (`x1.value`) matches only on qualifier+name; a
    /// bare reference matches on name alone, failing with
    /// [`StorageError::AmbiguousColumn`] when several columns share the
    /// name (the situation the paper's self-joins create).
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            let matches = match qualifier {
                Some(q) => {
                    c.name.eq_ignore_ascii_case(name)
                        && c.qualifier.as_deref().is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                }
                None => c.name.eq_ignore_ascii_case(name),
            };
            if matches {
                if found.is_some() {
                    let display = match qualifier {
                        Some(q) => format!("{q}.{name}"),
                        None => name.to_string(),
                    };
                    return Err(StorageError::AmbiguousColumn(display));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let display = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            };
            StorageError::NoSuchColumn(display)
        })
    }

    /// Parses `"alias.name"` or `"name"` and resolves it.
    pub fn resolve_str(&self, reference: &str) -> Result<usize> {
        match reference.split_once('.') {
            Some((q, n)) => self.resolve(Some(q), n),
            None => self.resolve(None, reference),
        }
    }

    /// Estimated width of one row in bytes, from declared types — the basis
    /// of the optimizer's data-volume costing (§4.1).
    pub fn estimated_row_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.dtype.estimated_byte_width()).sum()
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.full_name(), c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_schema() -> Schema {
        Schema::from_pairs(&[
            ("pointID", DataType::Integer),
            ("val", DataType::Vector(Some(10))),
        ])
    }

    #[test]
    fn resolve_bare_and_qualified() {
        let s = data_schema().with_qualifier("x1");
        assert_eq!(s.resolve(None, "pointID").unwrap(), 0);
        assert_eq!(s.resolve(Some("x1"), "val").unwrap(), 1);
        assert!(matches!(s.resolve(Some("x2"), "val"), Err(StorageError::NoSuchColumn(_))));
    }

    #[test]
    fn self_join_ambiguity() {
        let joined = data_schema()
            .with_qualifier("x1")
            .concat(&data_schema().with_qualifier("x2"));
        assert!(matches!(joined.resolve(None, "val"), Err(StorageError::AmbiguousColumn(_))));
        assert_eq!(joined.resolve(Some("x2"), "val").unwrap(), 3);
        assert_eq!(joined.resolve_str("x1.pointID").unwrap(), 0);
    }

    #[test]
    fn case_insensitive_resolution() {
        let s = data_schema();
        assert_eq!(s.resolve(None, "POINTID").unwrap(), 0);
    }

    #[test]
    fn row_byte_estimate() {
        assert_eq!(data_schema().estimated_row_bytes(), 8 + 88);
    }

    #[test]
    fn display_schema() {
        let s = data_schema().with_qualifier("t");
        let d = s.to_string();
        assert!(d.contains("t.pointID INTEGER"));
        assert!(d.contains("t.val VECTOR[10]"));
    }
}
