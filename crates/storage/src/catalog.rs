//! The catalog: tables, views and statistics.
//!
//! §4.2: "The optimizer obtains the dimensions of the u_matrix and v_matrix
//! objects by looking in the catalog." Our catalog stores, per table, the
//! declared schema (with any known LA dimensions) and basic statistics
//! (row count, total bytes) that feed the cost model.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::schema::Schema;
use crate::table::Table;
use crate::{Result, StorageError};

/// Statistics the optimizer reads for costing (§4.1 works entirely off
/// cardinalities and per-row widths).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TableStats {
    /// Row count.
    pub num_rows: usize,
    /// Total payload bytes.
    pub total_bytes: usize,
}

impl TableStats {
    /// Average row width in bytes (0 when empty).
    pub fn avg_row_bytes(&self) -> usize {
        self.total_bytes.checked_div(self.num_rows).unwrap_or(0)
    }
}

/// A named view: its SQL text, re-expanded at reference time (the paper's
/// examples lean on `CREATE VIEW` heavily).
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// The view body (a SELECT statement).
    pub sql: String,
    /// Column names to impose on the SELECT output, when the view was
    /// declared with an explicit column list.
    pub column_names: Option<Vec<String>>,
}

/// A materialized view: its defining SQL plus the lineage to the base
/// tables it reads, so INSERTs into those tables can trigger maintenance.
/// The materialized rows live in an ordinary catalog table of the same
/// name; this definition only records how to (re)build them.
#[derive(Debug, Clone)]
pub struct MatViewDef {
    /// The view body (a SELECT statement), re-planned on refresh.
    pub sql: String,
    /// Lowercased names of the base tables the bound plan scans (views
    /// already expanded), i.e. the tables whose INSERTs must maintain
    /// this view.
    pub base_tables: Vec<String>,
}

/// Registry of tables and views. Shared across the engine behind `Arc`;
/// table payloads use an `RwLock` so the executor can scan while DDL is
/// locked out.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    views: RwLock<HashMap<String, ViewDef>>,
    matviews: RwLock<HashMap<String, MatViewDef>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table; fails if any table *or view* already uses the
    /// name (views and tables share a namespace, as in SQL).
    pub fn create_table(&self, table: Table) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        if self.views.read().contains_key(&key) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        tables.insert(key, Arc::new(RwLock::new(table)));
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// True when a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Drops a table (idempotent failure: error when missing).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Registers a view.
    pub fn create_view(
        &self,
        name: &str,
        sql: impl Into<String>,
        column_names: Option<Vec<String>>,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.read().contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let mut views = self.views.write();
        if views.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        views.insert(key, ViewDef { sql: sql.into(), column_names });
        Ok(())
    }

    /// Looks up a view definition.
    pub fn view(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// True when a view with this name exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Drops a view.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        self.views
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Registers a materialized-view definition. The backing table (same
    /// name) is created separately via [`Catalog::create_table`], which
    /// enforces name uniqueness; this only stores how to maintain it.
    pub fn create_matview(&self, name: &str, def: MatViewDef) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut mats = self.matviews.write();
        if mats.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        mats.insert(key, def);
        Ok(())
    }

    /// Looks up a materialized-view definition.
    pub fn matview(&self, name: &str) -> Option<MatViewDef> {
        self.matviews.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// True when a materialized view with this name exists.
    pub fn has_matview(&self, name: &str) -> bool {
        self.matviews.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Drops a materialized-view definition (the backing table is dropped
    /// separately).
    pub fn drop_matview(&self, name: &str) -> Result<()> {
        self.matviews
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Names of the materialized views whose lineage includes `base`
    /// (sorted, so maintenance order is deterministic).
    pub fn matviews_on(&self, base: &str) -> Vec<String> {
        let key = base.to_ascii_lowercase();
        let mut names: Vec<String> = self
            .matviews
            .read()
            .iter()
            .filter(|(_, def)| def.base_tables.contains(&key))
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Schema of a table (views are resolved at bind time, not here).
    pub fn table_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.table(name)?.read().schema().clone())
    }

    /// Current statistics of a table, computed from the stored rows.
    pub fn table_stats(&self, name: &str) -> Result<TableStats> {
        let t = self.table(name)?;
        let t = t.read();
        Ok(TableStats { num_rows: t.num_rows(), total_bytes: t.byte_size() })
    }

    /// Names of all tables, sorted (deterministic for EXPLAIN and tests).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Partitioning;
    use crate::types::DataType;
    use crate::{Row, Value};

    fn t(name: &str) -> Table {
        Table::new(
            name,
            Schema::from_pairs(&[("id", DataType::Integer)]),
            2,
            Partitioning::RoundRobin,
        )
    }

    #[test]
    fn create_lookup_drop() {
        let c = Catalog::new();
        c.create_table(t("Foo")).unwrap();
        assert!(c.has_table("foo"));
        assert!(c.has_table("FOO")); // case-insensitive
        assert!(c.table("foo").is_ok());
        c.drop_table("Foo").unwrap();
        assert!(!c.has_table("foo"));
        assert!(matches!(c.table("foo"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_rejected_across_tables_and_views() {
        let c = Catalog::new();
        c.create_table(t("x")).unwrap();
        assert!(matches!(c.create_table(t("X")), Err(StorageError::DuplicateTable(_))));
        assert!(c.create_view("x", "SELECT 1", None).is_err());
        c.create_view("v", "SELECT 1", None).unwrap();
        assert!(c.create_table(t("v")).is_err());
        assert!(c.create_view("V", "SELECT 2", None).is_err());
    }

    #[test]
    fn stats_reflect_contents() {
        let c = Catalog::new();
        c.create_table(t("s")).unwrap();
        let handle = c.table("s").unwrap();
        handle.write().insert(Row::new(vec![Value::Integer(1)])).unwrap();
        handle.write().insert(Row::new(vec![Value::Integer(2)])).unwrap();
        let stats = c.table_stats("s").unwrap();
        assert_eq!(stats.num_rows, 2);
        assert_eq!(stats.total_bytes, 16);
        assert_eq!(stats.avg_row_bytes(), 8);
    }

    #[test]
    fn view_roundtrip() {
        let c = Catalog::new();
        c.create_view("vw", "SELECT id FROM s", Some(vec!["a".into()])).unwrap();
        let v = c.view("VW").unwrap();
        assert_eq!(v.sql, "SELECT id FROM s");
        assert_eq!(v.column_names.as_deref(), Some(&["a".to_string()][..]));
        c.drop_view("vw").unwrap();
        assert!(c.view("vw").is_none());
    }

    #[test]
    fn empty_stats() {
        assert_eq!(TableStats::default().avg_row_bytes(), 0);
    }

    #[test]
    fn matview_registry_roundtrip_and_lineage() {
        let c = Catalog::new();
        let def = MatViewDef {
            sql: "SELECT g, SUM(v) AS s FROM base GROUP BY g".into(),
            base_tables: vec!["base".into()],
        };
        c.create_matview("Totals", def.clone()).unwrap();
        assert!(c.has_matview("totals"));
        assert!(c.has_matview("TOTALS")); // case-insensitive
        assert_eq!(c.matview("totals").unwrap().sql, def.sql);
        assert!(c.create_matview("totals", def).is_err()); // duplicate
        // Lineage query: views on `base` include it; others don't.
        c.create_matview(
            "other",
            MatViewDef { sql: "SELECT a FROM t2".into(), base_tables: vec!["t2".into()] },
        )
        .unwrap();
        assert_eq!(c.matviews_on("BASE"), vec!["totals".to_string()]);
        assert_eq!(c.matviews_on("t2"), vec!["other".to_string()]);
        assert!(c.matviews_on("nope").is_empty());
        c.drop_matview("totals").unwrap();
        assert!(!c.has_matview("totals"));
        assert!(c.drop_matview("totals").is_err());
    }
}
