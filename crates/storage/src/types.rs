//! The extended SQL type lattice: classical types plus `LABELED_SCALAR`,
//! `VECTOR[n]` and `MATRIX[r][c]` (§3.1).

use std::fmt;

/// A column data type.
///
/// For `Vector` and `Matrix`, the dimension parameters follow the paper's
/// declaration syntax: `VECTOR[100]` is `Vector(Some(100))`, `VECTOR[]` is
/// `Vector(None)`, `MATRIX[10][]` is `Matrix(Some(10), None)`. Known
/// dimensions let the type checker reject size mismatches at compile time
/// and — crucially — let the optimizer compute the byte width of
/// intermediate results (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (SQL `INTEGER`).
    Integer,
    /// 64-bit float (SQL `DOUBLE`).
    Double,
    /// SQL `BOOLEAN`.
    Boolean,
    /// Variable-length string (SQL `VARCHAR`).
    Varchar,
    /// The paper's `LABELED_SCALAR`: a double plus an integer label.
    LabeledScalar,
    /// `VECTOR[n]`; `None` means the length is unknown until runtime.
    Vector(Option<usize>),
    /// `MATRIX[r][c]`; each dimension may independently be unknown.
    Matrix(Option<usize>, Option<usize>),
}

impl DataType {
    /// True for the three types the paper adds to the relational model.
    pub fn is_linear_algebra(&self) -> bool {
        matches!(self, DataType::LabeledScalar | DataType::Vector(_) | DataType::Matrix(_, _))
    }

    /// True for types that participate in numeric arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Integer
                | DataType::Double
                | DataType::LabeledScalar
                | DataType::Vector(_)
                | DataType::Matrix(_, _)
        )
    }

    /// True when `value` of this type could be bound to a column declared as
    /// `decl`. Unknown dimensions accept anything; known dimensions must
    /// match exactly. This is the paper's static/dynamic split: a
    /// `VECTOR[]` column admits any vector and defers size errors to
    /// runtime (§3.1).
    pub fn accepts(&self, value: &DataType) -> bool {
        match (self, value) {
            (DataType::Vector(None), DataType::Vector(_)) => true,
            (DataType::Vector(Some(a)), DataType::Vector(Some(b))) => a == b,
            // A sized column does not accept a value of statically-unknown
            // size at planning time; runtime re-checks actual sizes.
            (DataType::Vector(Some(_)), DataType::Vector(None)) => true,
            (DataType::Matrix(r1, c1), DataType::Matrix(r2, c2)) => {
                dim_compatible(*r1, *r2) && dim_compatible(*c1, *c2)
            }
            (a, b) => a == b,
        }
    }

    /// Estimated width of one value of this type, in bytes — the quantity
    /// the paper's optimizer uses to cost plans (§4.1: an intermediate
    /// `MATRIX[100000][100]` weighs `8 × 100000 × 100` bytes). Unknown
    /// dimensions fall back to a deliberately pessimistic default so the
    /// optimizer does not underestimate them.
    pub fn estimated_byte_width(&self) -> usize {
        const UNKNOWN_DIM_GUESS: usize = 1000;
        match self {
            DataType::Integer | DataType::Double => 8,
            DataType::Boolean => 1,
            DataType::Varchar => 16,
            DataType::LabeledScalar => 16,
            DataType::Vector(n) => 8 * n.unwrap_or(UNKNOWN_DIM_GUESS) + 8,
            DataType::Matrix(r, c) => {
                8 * r.unwrap_or(UNKNOWN_DIM_GUESS) * c.unwrap_or(UNKNOWN_DIM_GUESS)
            }
        }
    }
}

fn dim_compatible(decl: Option<usize>, val: Option<usize>) -> bool {
    match (decl, val) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Boolean => write!(f, "BOOLEAN"),
            DataType::Varchar => write!(f, "VARCHAR"),
            DataType::LabeledScalar => write!(f, "LABELED_SCALAR"),
            DataType::Vector(None) => write!(f, "VECTOR[]"),
            DataType::Vector(Some(n)) => write!(f, "VECTOR[{n}]"),
            DataType::Matrix(r, c) => {
                write!(f, "MATRIX[")?;
                if let Some(r) = r {
                    write!(f, "{r}")?;
                }
                write!(f, "][")?;
                if let Some(c) = c {
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_sql_syntax() {
        assert_eq!(DataType::Vector(Some(100)).to_string(), "VECTOR[100]");
        assert_eq!(DataType::Vector(None).to_string(), "VECTOR[]");
        assert_eq!(DataType::Matrix(Some(10), None).to_string(), "MATRIX[10][]");
        assert_eq!(DataType::Matrix(Some(10), Some(20)).to_string(), "MATRIX[10][20]");
        assert_eq!(DataType::LabeledScalar.to_string(), "LABELED_SCALAR");
    }

    #[test]
    fn la_classification() {
        assert!(DataType::Vector(None).is_linear_algebra());
        assert!(DataType::Matrix(None, None).is_linear_algebra());
        assert!(DataType::LabeledScalar.is_linear_algebra());
        assert!(!DataType::Double.is_linear_algebra());
        assert!(DataType::Double.is_numeric());
        assert!(!DataType::Varchar.is_numeric());
    }

    #[test]
    fn accepts_unknown_dims() {
        let decl = DataType::Vector(None);
        assert!(decl.accepts(&DataType::Vector(Some(7))));
        let sized = DataType::Vector(Some(10));
        assert!(sized.accepts(&DataType::Vector(Some(10))));
        assert!(!sized.accepts(&DataType::Vector(Some(11))));
        let m = DataType::Matrix(Some(10), None);
        assert!(m.accepts(&DataType::Matrix(Some(10), Some(5))));
        assert!(!m.accepts(&DataType::Matrix(Some(9), Some(5))));
        assert!(!DataType::Integer.accepts(&DataType::Double));
    }

    #[test]
    fn byte_width_estimates() {
        assert_eq!(DataType::Double.estimated_byte_width(), 8);
        assert_eq!(DataType::Vector(Some(100)).estimated_byte_width(), 808);
        // the paper's §4.1 example: MATRIX[100000][100] ≈ 80 MB
        assert_eq!(
            DataType::Matrix(Some(100_000), Some(100)).estimated_byte_width(),
            80_000_000
        );
    }
}
