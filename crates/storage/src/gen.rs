//! Deterministic synthetic data generators for the paper's workloads.
//!
//! The paper's experiments run on dense synthetic data ("there is likely no
//! practical difference between synthetic and real data" — §5). These
//! helpers produce the same data in each of the three representations the
//! paper compares:
//!
//! * **tuple form** — `(row_index, col_index, value)` triples, one tuple per
//!   matrix entry (what the unmodified RDBMS must use);
//! * **vector form** — `(id, VECTOR)` rows;
//! * **block form** is built *by the engine itself* from vector form using
//!   the `ROWMATRIX(label_vector(...))` query, since the paper counts
//!   blocking as part of the computation.

use lardb_la::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::row::Row;
use crate::value::Value;

/// Uniform(-1, 1) dense vector.
pub fn random_vector(rng: &mut StdRng, dims: usize) -> Vector {
    Vector::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
}

/// Uniform(-1, 1) dense matrix.
pub fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// A symmetric positive-definite `dims × dims` matrix (`B·Bᵀ + dims·I`) —
/// the Riemannian metric `A` of the distance workload.
pub fn spd_matrix(seed: u64, dims: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = random_matrix(&mut rng, dims, dims);
    let bbt = b.multiply(&b.transpose()).expect("square");
    bbt.add(&Matrix::identity(dims).scalar_mul(dims as f64)).expect("same shape")
}

/// Vector-form data set: rows `(id INTEGER, value VECTOR[dims])`,
/// ids `0..n`.
pub fn vector_rows(seed: u64, n: usize, dims: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Integer(i as i64),
                Value::vector(random_vector(&mut rng, dims)),
            ])
        })
        .collect()
}

/// Tuple-form of the *same* data as [`vector_rows`] with the same seed:
/// rows `(row_index INTEGER, col_index INTEGER, value DOUBLE)`. One data
/// point becomes `dims` tuples — the blow-up at the heart of Figure 4.
pub fn tuple_rows(seed: u64, n: usize, dims: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * dims);
    for i in 0..n {
        let v = random_vector(&mut rng, dims);
        for (j, &x) in v.as_slice().iter().enumerate() {
            out.push(Row::new(vec![
                Value::Integer(i as i64),
                Value::Integer(j as i64),
                Value::Double(x),
            ]));
        }
    }
    out
}

/// Regression targets: `y_i = x_i · β* + ε`, with a fixed true coefficient
/// vector `β*` derived from the seed. Returns rows `(i INTEGER, y_i
/// DOUBLE)` aligned with [`vector_rows`] of the same seed/n/dims.
pub fn regression_targets(seed: u64, n: usize, dims: usize, noise: f64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Noise comes from an independent stream so the x-sequence here stays
    // bit-identical to `vector_rows(seed, ..)` regardless of noise level.
    let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x5eed_0f00_d5ee_d0f0);
    let beta = true_beta(seed, dims);
    (0..n)
        .map(|i| {
            let x = random_vector(&mut rng, dims);
            let mut y = x.inner_product(&beta).expect("same dims");
            if noise > 0.0 {
                y += noise_rng.gen_range(-noise..noise);
            }
            Row::new(vec![Value::Integer(i as i64), Value::Double(y)])
        })
        .collect()
}

/// The true coefficient vector used by [`regression_targets`]; exposed so
/// tests can check recovered coefficients.
pub fn true_beta(seed: u64, dims: usize) -> Vector {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbe7a_caf3);
    random_vector(&mut rng, dims)
}

/// Dense matrix in tile form: rows `(tileRow INTEGER, tileCol INTEGER,
/// mat MATRIX[tile][tile])` — the `bigMatrix` layout of §3.4.
pub fn tiled_matrix_rows(seed: u64, tiles_per_side: usize, tile: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(tiles_per_side * tiles_per_side);
    for tr in 0..tiles_per_side {
        for tc in 0..tiles_per_side {
            out.push(Row::new(vec![
                Value::Integer(tr as i64),
                Value::Integer(tc as i64),
                Value::matrix(random_matrix(&mut rng, tile, tile)),
            ]));
        }
    }
    out
}

/// Assembles the full dense matrix that a tile-form data set represents;
/// test helper for checking distributed tile arithmetic against a serial
/// kernel.
pub fn assemble_tiles(rows: &[Row], tiles_per_side: usize, tile: usize) -> Matrix {
    let n = tiles_per_side * tile;
    let mut full = Matrix::zeros(n, n);
    for row in rows {
        let tr = row.value(0).as_integer().expect("tileRow") as usize;
        let tc = row.value(1).as_integer().expect("tileCol") as usize;
        let m = row.value(2).as_matrix().expect("mat");
        for i in 0..tile {
            for j in 0..tile {
                full.set(tr * tile + i, tc * tile + j, m.get(i, j).expect("in range"))
                    .expect("in range");
            }
        }
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_and_tuple_forms_agree() {
        let vecs = vector_rows(7, 5, 4);
        let tups = tuple_rows(7, 5, 4);
        assert_eq!(tups.len(), 20);
        // entry (i, j) of the tuple form equals entry j of vector i
        for t in &tups {
            let i = t.value(0).as_integer().unwrap() as usize;
            let j = t.value(1).as_integer().unwrap() as usize;
            let x = t.value(2).as_double().unwrap();
            let v = vecs[i].value(1).as_vector().unwrap();
            assert_eq!(v.get(j).unwrap(), x);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(vector_rows(1, 3, 2), vector_rows(1, 3, 2));
        assert_ne!(vector_rows(1, 3, 2), vector_rows(2, 3, 2));
    }

    #[test]
    fn spd_matrix_is_spd() {
        let a = spd_matrix(3, 6);
        assert!(lardb_la::chol::is_symmetric(&a, 1e-12));
        assert!(lardb_la::CholeskyDecomposition::new(&a).is_ok());
    }

    #[test]
    fn regression_targets_follow_beta_when_noiseless() {
        let n = 10;
        let dims = 4;
        let xs = vector_rows(11, n, dims);
        let ys = regression_targets(11, n, dims, 0.0);
        let beta = true_beta(11, dims);
        for i in 0..n {
            let x = xs[i].value(1).as_vector().unwrap();
            let y = ys[i].value(1).as_double().unwrap();
            assert!((x.inner_product(&beta).unwrap() - y).abs() < 1e-12);
        }
    }

    #[test]
    fn noisy_targets_stay_aligned_with_vector_rows() {
        // Regression test: noise must come from an independent RNG stream,
        // or targets desynchronize from the x vectors.
        let n = 20;
        let dims = 5;
        let xs = vector_rows(3, n, dims);
        let ys = regression_targets(3, n, dims, 0.5);
        let beta = true_beta(3, dims);
        for i in 0..n {
            let x = xs[i].value(1).as_vector().unwrap();
            let y = ys[i].value(1).as_double().unwrap();
            let clean = x.inner_product(&beta).unwrap();
            assert!((clean - y).abs() <= 0.5, "row {i}: |{clean} - {y}| > noise bound");
        }
    }

    #[test]
    fn tiles_roundtrip() {
        let rows = tiled_matrix_rows(5, 3, 4);
        assert_eq!(rows.len(), 9);
        let full = assemble_tiles(&rows, 3, 4);
        assert_eq!(full.shape(), (12, 12));
        // spot-check one tile
        let m = rows[4].value(2).as_matrix().unwrap(); // tile (1,1)
        assert_eq!(full.get(4, 4).unwrap(), m.get(0, 0).unwrap());
    }
}
