//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the subset the workspace uses: `rngs::StdRng` seeded with
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over primitive
//! ranges. The core generator is SplitMix64 — fast, passes basic
//! statistical smoke tests, and fully deterministic per seed. Streams
//! differ from the real `rand` crate's StdRng (ChaCha12); callers in this
//! workspace only rely on determinism, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform draw of the given sampleable type (`f64` in [0,1),
    /// integers over their full domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable uniformly over a canonical domain.
pub trait Standard: Sized {
    /// One uniform draw.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 high-quality mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stand-in has one generator quality tier.
    pub type SmallRng = StdRng;
}

/// A generator seeded from the system clock — for callers that want
/// non-reproducible streams.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x1234_5678);
    rngs::StdRng::seed_from_u64(nanos)
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..20).map(|_| c.gen_range(0i64..1000)).collect();
        let mut c2 = StdRng::seed_from_u64(7);
        let diff: Vec<i64> = (0..20).map(|_| c2.gen_range(0i64..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = r.gen_range(3i64..17);
            assert!((3..17).contains(&i));
            let u = r.gen_range(0usize..=5);
            assert!(u <= 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(0.0..1.0);
            buckets[(x * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "{buckets:?}");
        }
    }
}
