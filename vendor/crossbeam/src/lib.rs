//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Covers the two pieces this workspace uses:
//!
//! * [`thread::scope`] — scoped threads with crossbeam's calling
//!   convention (`scope(|s| ...)` returning `Result`, spawn closures
//!   receiving `&Scope`). Built on `std::thread` with the classic
//!   lifetime-erasure trick; soundness rests on `scope` joining every
//!   spawned thread before it returns, which it always does.
//! * [`channel`] — MPMC `bounded`/`unbounded` channels built on
//!   `Mutex<VecDeque>` + two condvars, with disconnect semantics
//!   (`send` fails once all receivers drop, `recv` fails once the
//!   queue is drained and all senders drop).
//!
//! Known deviation: a spawned thread that panics and is never joined
//! does not turn the scope's return value into `Err` (every caller in
//! this workspace joins all handles, so the path is unused).

pub mod thread {
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    /// What `std::thread::JoinHandle::join` returns.
    pub type Result<T> = std::thread::Result<T>;

    type SharedHandle = Arc<Mutex<Option<std::thread::JoinHandle<()>>>>;

    /// A scope within which non-`'static` threads may be spawned.
    pub struct Scope<'env> {
        wait_list: Mutex<Vec<SharedHandle>>,
        // Invariant over 'env, like crossbeam.
        _marker: PhantomData<&'env mut &'env ()>,
    }

    /// Raw scope pointer smuggled into the spawned thread so the body
    /// can receive `&Scope`. Sound because the scope outlives every
    /// thread (joined before `scope` returns) and `Scope` is `Sync`.
    struct ScopePtr<'env>(*const Scope<'env>);
    unsafe impl Send for ScopePtr<'_> {}

    /// Handle to a scoped thread; `join` returns the closure's value.
    pub struct ScopedJoinHandle<'scope, T> {
        handle: SharedHandle,
        result: Arc<Mutex<Option<Result<T>>>>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload if the closure panicked).
        pub fn join(self) -> Result<T> {
            let handle = self
                .handle
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("scoped thread already joined");
            // The spawned body never panics (it catches the user
            // closure's panic), so this join only fails on OS-level
            // catastrophe.
            handle.join().expect("scoped thread runner panicked");
            self.result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("scoped thread finished without storing a result")
        }
    }

    impl<'env> Scope<'env> {
        /// Spawns a thread that may borrow from the enclosing stack frame.
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            let result: Arc<Mutex<Option<Result<T>>>> = Arc::new(Mutex::new(None));
            let their_result = Arc::clone(&result);
            let scope_ptr = ScopePtr(self as *const Scope<'env>);
            let body: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let scope_ptr = scope_ptr;
                let out = catch_unwind(AssertUnwindSafe(|| f(unsafe { &*scope_ptr.0 })));
                *their_result.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
            // Erase 'env: sound because `scope` joins this thread before
            // returning, so nothing borrowed outlives its referent.
            let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
            let handle = std::thread::spawn(body);
            let shared: SharedHandle = Arc::new(Mutex::new(Some(handle)));
            self.wait_list
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&shared));
            ScopedJoinHandle {
                handle: shared,
                result,
                _marker: PhantomData,
            }
        }
    }

    /// Runs `f` with a scope handle; joins every spawned thread before
    /// returning. Returns `Ok(f's value)`; propagates `f`'s own panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            wait_list: Mutex::new(Vec::new()),
            _marker: PhantomData,
        };
        let closure_result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join stragglers whose handles were dropped without join —
        // required for soundness of the lifetime erasure above.
        let handles = scope
            .wait_list
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        for shared in handles {
            let handle = shared.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
        match closure_result {
            Ok(r) => Ok(r),
            Err(payload) => resume_unwind(payload),
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// `send` failed because every receiver was dropped; returns the value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// `recv` failed: channel empty and every sender dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Inner<T> {
        fn wake_all(&self) {
            self.not_empty.notify_all();
            self.not_full.notify_all();
        }
    }

    /// Sending half; clonable (MPMC).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; fails once all receivers drop.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self.inner.cap.is_some_and(|c| state.queue.len() >= c);
                if !full {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.wake_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks while the channel is empty; fails once it is drained
        /// and all senders have dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.wake_all();
            }
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Channel holding at most `cap` queued values; `send` blocks when
    /// full. Rendezvous channels (`cap == 0`) are not supported by this
    /// stand-in; a capacity of 0 is treated as 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    /// Channel with no capacity limit; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3, 4];
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 100);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn joined_panic_surfaces_as_err() {
        let joined = crate::thread::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(joined.is_err());
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = crate::channel::bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = crate::channel::bounded::<i32>(4);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn bounded_backpressure_across_threads() {
        let (tx, rx) = crate::channel::bounded(1);
        crate::thread::scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        })
        .unwrap();
    }

    #[test]
    fn mpmc_all_values_delivered() {
        let (tx, rx) = crate::channel::bounded(8);
        let total = crate::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..50 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut n = 0usize;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(total, 200);
    }
}
