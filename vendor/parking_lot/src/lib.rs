//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Same calling convention as the real crate: `read()` / `write()` /
//! `lock()` return guards directly instead of `Result`. A poisoned std
//! lock (a writer panicked) is recovered rather than propagated — matching
//! parking_lot, which has no poisoning at all.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }

    #[test]
    fn poison_recovered() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 0); // no panic on re-acquire
    }
}
