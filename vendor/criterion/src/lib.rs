//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Provides the API surface the bench crate uses — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId::new`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark reports min / median / max
//! time per iteration over `sample_size` samples to stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, so benchmarked results are not
/// dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names one parameterized benchmark: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Names a benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample (after one untimed warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.per_iter.push(start.elapsed());
        }
    }
}

fn report(name: &str, per_iter: &mut [Duration]) {
    if per_iter.is_empty() {
        println!("{name:<50} (no measurements)");
        return;
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{name:<50} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        median,
        per_iter[0],
        per_iter[per_iter.len() - 1],
        per_iter.len()
    );
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed runs each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            per_iter: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.per_iter);
        self
    }

    /// Runs one benchmark that also receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            per_iter: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b.per_iter);
        self
    }

    /// Ends the group (formatting no-op in this stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Default sample count for ungrouped benchmarks.
    const DEFAULT_SAMPLES: usize = 10;

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: Self::DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Self::DEFAULT_SAMPLES,
            per_iter: Vec::new(),
        };
        f(&mut b);
        report(&format!("{id}"), &mut b.per_iter);
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (CLI filters are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_measure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 128).to_string(), "gemm/128");
    }
}
