//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, strategies
//! for primitive ranges, tuples, [`collection::vec`], [`option::of`] and
//! [`bool::ANY`], plus `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`.
//!
//! Known deviations from the real crate:
//! * no shrinking — a failure reports the case number and message only;
//! * a fixed RNG seed, so runs are reproducible across machines;
//! * `ProptestConfig::default()` runs 64 cases (real default: 256).

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases that must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 with a fixed seed: deterministic across runs and hosts.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator every `proptest!` test starts from.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0xDA7A_BA5E_C0DE_C0DE,
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer draw from [lo, hi] (inclusive), via i128 to
        /// cover the full u64/i64 domains.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + ((self.next_u64() as u128) % span) as i128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Uses each generated value to build a follow-up strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.gen_value(rng)).gen_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element counts a [`vec()`] strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `Vec`s of `element`-generated values with a length drawn from
    /// `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default: Some three times out of four.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }

    /// `Option`s of `inner`-generated values (None ~25% of the time).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Fair coin flip.
    pub const ANY: Any = Any;
}

/// `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 256 + config.cases * 16,
                            "proptest: too many prop_assume rejections"
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", passed, msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        fn ranges_and_tuples((a, b) in (0i64..10, -1.0f64..1.0), n in 1usize..=4) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&n));
        }

        fn vec_lengths(xs in crate::collection::vec(0i64..100, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            for x in &xs {
                prop_assert!((0..100).contains(x));
            }
        }

        fn map_and_flat_map(
            m in (1usize..=5).prop_flat_map(|n| {
                crate::collection::vec(0i64..10, n).prop_map(move |v| (n, v))
            })
        ) {
            prop_assert_eq!(m.0, m.1.len());
        }

        fn options_and_bools(o in crate::option::of(0i64..5), flag in crate::bool::ANY) {
            if let Some(v) = o {
                prop_assert!((0..5).contains(&v));
            }
            prop_assert!(flag || !flag);
        }

        fn assume_rejects(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!((0i64..1000).gen_value(&mut a), (0i64..1000).gen_value(&mut b));
        }
    }
}
