//! Engine-level property tests: for random data, random worker counts and
//! random optimizer configurations, the engine must return the same answer
//! as a direct in-memory computation. This is the top-level invariant that
//! makes everything else (plans, exchanges, fusion) an implementation
//! detail.

use lardb::{
    Database, DatabaseConfig, DataType, OptimizerConfig, Partitioning, Row, Schema, Value,
    Vector,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn db_with(workers: usize, size_inference: bool, early_projection: bool) -> Database {
    Database::with_config(DatabaseConfig {
        workers,
        optimizer: OptimizerConfig { size_inference, early_projection, ..Default::default() },
        ..DatabaseConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grouped_sum_matches_reference(
        rows in proptest::collection::vec((0i64..8, -100i64..100), 1..80),
        workers in 1usize..5,
        part in 0usize..3,
    ) {
        let partitioning = match part {
            0 => Partitioning::RoundRobin,
            1 => Partitioning::Hash(0),
            _ => Partitioning::Replicated,
        };
        let db = Database::new(workers);
        db.create_table(
            "t",
            Schema::from_pairs(&[("g", DataType::Integer), ("v", DataType::Integer)]),
            partitioning,
        )
        .unwrap();
        db.insert_rows(
            "t",
            rows.iter().map(|&(g, v)| Row::new(vec![Value::Integer(g), Value::Integer(v)])),
        )
        .unwrap();

        let r = db.query("SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g").unwrap();

        let mut expected: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for &(g, v) in &rows {
            let e = expected.entry(g).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let mut got: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for row in &r.rows {
            got.insert(
                row.value(0).as_integer().unwrap(),
                (row.value(1).as_integer().unwrap(), row.value(2).as_integer().unwrap()),
            );
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_cardinality_matches_reference(
        left in proptest::collection::vec(0i64..10, 1..40),
        right in proptest::collection::vec(0i64..10, 1..40),
        workers in 1usize..5,
    ) {
        let db = Database::new(workers);
        db.execute("CREATE TABLE l (k INTEGER)").unwrap();
        db.execute("CREATE TABLE r (k INTEGER)").unwrap();
        db.insert_rows("l", left.iter().map(|&k| Row::new(vec![Value::Integer(k)]))).unwrap();
        db.insert_rows("r", right.iter().map(|&k| Row::new(vec![Value::Integer(k)]))).unwrap();

        let q = db.query("SELECT COUNT(*) AS n FROM l, r WHERE l.k = r.k").unwrap();
        let expected: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count())
            .sum();
        prop_assert_eq!(q.scalar().unwrap().as_integer(), Some(expected as i64));
    }

    #[test]
    fn gram_invariant_under_optimizer_and_workers(
        data in proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, 4), 2..30),
        workers in 1usize..5,
        size_inference in proptest::bool::ANY,
        early_projection in proptest::bool::ANY,
    ) {
        let db = db_with(workers, size_inference, early_projection);
        db.create_table(
            "x",
            Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Vector(Some(4)))]),
            Partitioning::RoundRobin,
        )
        .unwrap();
        db.insert_rows(
            "x",
            data.iter().enumerate().map(|(i, v)| {
                Row::new(vec![Value::Integer(i as i64), Value::vector(Vector::from_slice(v))])
            }),
        )
        .unwrap();
        let r = db.query("SELECT SUM(outer_product(v, v)) AS g FROM x").unwrap();
        let got = r.scalar().unwrap().as_matrix().unwrap().clone();

        let mut expected = lardb::Matrix::zeros(4, 4);
        for v in &data {
            let vv = Vector::from_slice(v);
            vv.outer_product_into(&vv, &mut expected).unwrap();
        }
        prop_assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn vectorize_roundtrip_through_sql(
        values in proptest::collection::vec(-50.0f64..50.0, 1..40),
        workers in 1usize..5,
    ) {
        let db = Database::new(workers);
        db.execute("CREATE TABLE y (i INTEGER, v DOUBLE)").unwrap();
        db.insert_rows(
            "y",
            values.iter().enumerate().map(|(i, &v)| {
                Row::new(vec![Value::Integer(i as i64), Value::Double(v)])
            }),
        )
        .unwrap();
        let r = db.query("SELECT VECTORIZE(label_scalar(v, i)) AS vec FROM y").unwrap();
        let vec = r.scalar().unwrap().as_vector().unwrap().clone();
        prop_assert_eq!(vec.as_slice(), &values[..]);
    }
}
