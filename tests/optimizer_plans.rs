//! Optimizer plan-shape tests through the full engine: the §4.1 example
//! (early projection through a cross product beats the rule-based join
//! order) and the ablation knobs, with results checked for correctness in
//! every configuration.

use lardb::{
    DataType, Database, DatabaseConfig, Matrix, OptimizerConfig, Partitioning, Row, Schema,
    Value,
};

/// Scaled-down §4.1 schema: the declared matrix shapes make `R ⋈ᵣᵢ𝒹 T ⋈ₛᵢ𝒹 S`
/// carry ~10 KB matrices per row while `matrix_multiply(r, s)` is 6 doubles.
/// |R| = |S| = 30, |T| = 3000 — T deliberately large so the intermediate
/// carrying matrices through T dwarfs everything else, as in the paper.
fn setup_rst(db: &Database) {
    db.create_table(
        "R",
        Schema::from_pairs(&[
            ("r_rid", DataType::Integer),
            ("r_matrix", DataType::Matrix(Some(2), Some(500))),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::from_pairs(&[
            ("s_sid", DataType::Integer),
            ("s_matrix", DataType::Matrix(Some(500), Some(3))),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.create_table(
        "T",
        Schema::from_pairs(&[("t_rid", DataType::Integer), ("t_sid", DataType::Integer)]),
        Partitioning::RoundRobin,
    )
    .unwrap();

    for i in 0..30i64 {
        db.insert_rows(
            "R",
            [Row::new(vec![
                Value::Integer(i),
                Value::matrix(Matrix::filled(2, 500, (i + 1) as f64 * 1e-3)),
            ])],
        )
        .unwrap();
        db.insert_rows(
            "S",
            [Row::new(vec![
                Value::Integer(i),
                Value::matrix(Matrix::filled(500, 3, (i + 1) as f64 * 1e-3)),
            ])],
        )
        .unwrap();
    }
    for k in 0..3000i64 {
        db.insert_rows(
            "T",
            [Row::new(vec![Value::Integer(k % 30), Value::Integer((k * 7) % 30)])],
        )
        .unwrap();
    }
}

const RST_QUERY: &str = "SELECT matrix_multiply(r_matrix, s_matrix) AS prod
     FROM R, S, T
     WHERE r_rid = t_rid AND s_sid = t_sid";

/// Expected multiset of products, computed directly.
fn expected_products() -> Vec<f64> {
    // product of filled matrices: every entry = 500 * a * b where a, b are
    // the fill values; identify each result by its (0,0) entry.
    let mut out = Vec::new();
    for k in 0..3000i64 {
        let rid = (k % 30 + 1) as f64 * 1e-3;
        let sid = ((k * 7) % 30 + 1) as f64 * 1e-3;
        out.push(500.0 * rid * sid);
    }
    out.sort_by(f64::total_cmp);
    out
}

fn run_and_collect(db: &Database) -> Vec<f64> {
    let r = db.query(RST_QUERY).unwrap();
    assert_eq!(r.rows.len(), 3000);
    let mut got: Vec<f64> = r
        .rows
        .iter()
        .map(|row| {
            let m = row.value(0).as_matrix().unwrap();
            assert_eq!(m.shape(), (2, 3));
            m.get(0, 0).unwrap()
        })
        .collect();
    got.sort_by(f64::total_cmp);
    got
}

fn assert_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
    }
}

#[test]
fn paper_41_plan_uses_early_cross_product() {
    let db = Database::new(4);
    setup_rst(&db);
    let plan = db.explain(RST_QUERY).unwrap();
    // The winning plan evaluates matrix_multiply inside the tree (early
    // projection) and joins R with S *before* T — visible as a
    // NestedLoopJoin (cross product) whose projection carries the multiply.
    assert!(
        plan.contains("NestedLoopJoin"),
        "expected a cross product between R and S:\n{plan}"
    );
    let logical = plan.split("== Physical Plan ==").next().unwrap();
    let mm_line = logical
        .lines()
        .find(|l| l.contains("matrix_multiply"))
        .expect("plan must contain the multiply");
    // The multiply must not be in the top-level (root) projection: root is
    // indented zero levels.
    assert!(
        mm_line.starts_with("  "),
        "matrix_multiply should be pushed below the root:\n{plan}"
    );
    // And results are right.
    assert_close(&run_and_collect(&db), &expected_products());
}

#[test]
fn blind_optimizer_produces_rule_based_plan_but_same_answer() {
    let mut db = Database::with_config(DatabaseConfig {
        workers: 4,
        optimizer: OptimizerConfig { size_inference: false, ..Default::default() },
        ..DatabaseConfig::default()
    });
    setup_rst(&db);
    let plan = db.explain(RST_QUERY).unwrap();
    // Without size knowledge the optimizer avoids the cross product and
    // joins through T (π((S ⋈ T) ⋈ R)) — the paper's "bad plan".
    assert!(
        !plan.contains("NestedLoopJoin"),
        "blind optimizer should not choose the cross product:\n{plan}"
    );
    assert_close(&run_and_collect(&db), &expected_products());
    // Keep db mutable API exercised.
    db.set_optimizer_config(OptimizerConfig::default());
    assert_close(&run_and_collect(&db), &expected_products());
}

#[test]
fn no_early_projection_keeps_multiply_at_root_but_same_answer() {
    let db = Database::with_config(DatabaseConfig {
        workers: 4,
        optimizer: OptimizerConfig { early_projection: false, ..Default::default() },
        ..DatabaseConfig::default()
    });
    setup_rst(&db);
    let plan = db.explain(RST_QUERY).unwrap();
    let logical: Vec<&str> = plan
        .split("== Physical Plan ==")
        .next()
        .unwrap()
        .lines()
        .filter(|l| l.contains("matrix_multiply"))
        .collect();
    // The multiply appears exactly once, in the root projection (line
    // indented one level under the header).
    assert_eq!(logical.len(), 1, "{plan}");
    assert_close(&run_and_collect(&db), &expected_products());
}

#[test]
fn shuffle_volume_shrinks_with_early_projection() {
    // The quantitative §4.1 claim: early projection cuts the bytes moving
    // through the plan by orders of magnitude.
    let db_smart = Database::new(4);
    setup_rst(&db_smart);
    let smart = db_smart.query(RST_QUERY).unwrap();

    let db_blind = Database::with_config(DatabaseConfig {
        workers: 4,
        optimizer: OptimizerConfig { size_inference: false, ..Default::default() },
        ..DatabaseConfig::default()
    });
    setup_rst(&db_blind);
    let blind = db_blind.query(RST_QUERY).unwrap();

    let smart_bytes = smart.stats.total_bytes_shuffled();
    let blind_bytes = blind.stats.total_bytes_shuffled();
    assert!(
        smart_bytes * 10 < blind_bytes,
        "early projection should shuffle ≥10× less: smart={smart_bytes} blind={blind_bytes}"
    );
}

#[test]
fn single_table_predicates_are_pushed_below_joins() {
    let db = Database::new(2);
    db.execute("CREATE TABLE a (k INTEGER, v DOUBLE)").unwrap();
    db.execute("CREATE TABLE b (k INTEGER, w DOUBLE)").unwrap();
    for i in 0..20i64 {
        db.execute(&format!("INSERT INTO a VALUES ({i}, {i})")).unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({i}, {i})")).unwrap();
    }
    let plan = db
        .explain("SELECT a.v FROM a, b WHERE a.k = b.k AND a.v < 5 AND b.w > 2")
        .unwrap();
    let logical = plan.split("== Physical Plan ==").next().unwrap();
    // Both single-table filters should appear below the join, directly over
    // scans.
    let filter_count = logical.matches("Filter").count();
    assert!(filter_count >= 2, "{plan}");
    let r = db
        .query("SELECT a.v FROM a, b WHERE a.k = b.k AND a.v < 5 AND b.w > 2")
        .unwrap();
    assert_eq!(r.rows.len(), 2); // k ∈ {3, 4}
}

#[test]
fn prepartitioned_join_avoids_shuffling_that_side() {
    // §2.1's scenario: R pre-partitioned on the join key means only L moves.
    let db = Database::new(4);
    db.create_table(
        "hashed",
        Schema::from_pairs(&[("k", DataType::Integer), ("v", DataType::Double)]),
        Partitioning::Hash(0),
    )
    .unwrap();
    db.create_table(
        "rr",
        Schema::from_pairs(&[("k", DataType::Integer), ("w", DataType::Double)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    for i in 0..40i64 {
        db.insert_rows(
            "hashed",
            [Row::new(vec![Value::Integer(i), Value::Double(i as f64)])],
        )
        .unwrap();
        db.insert_rows("rr", [Row::new(vec![Value::Integer(i), Value::Double(i as f64)])])
            .unwrap();
    }
    let plan = db
        .explain("SELECT hashed.v FROM hashed, rr WHERE hashed.k = rr.k")
        .unwrap();
    let physical = plan.split("== Physical Plan ==").nth(1).unwrap();
    let hash_exchanges = physical.matches("Exchange(Hash)").count();
    assert_eq!(hash_exchanges, 1, "only the round-robin side should move:\n{plan}");
    let r = db.query("SELECT hashed.v FROM hashed, rr WHERE hashed.k = rr.k").unwrap();
    assert_eq!(r.rows.len(), 40);
}

#[test]
fn four_way_join_order_is_correct() {
    // DP enumeration across 4 inputs; answer checked against a serial
    // computation.
    let db = Database::new(3);
    for t in ["t1", "t2", "t3", "t4"] {
        db.execute(&format!("CREATE TABLE {t} (k INTEGER, v INTEGER)")).unwrap();
    }
    for i in 0..15i64 {
        db.execute(&format!("INSERT INTO t1 VALUES ({i}, {})", i)).unwrap();
        db.execute(&format!("INSERT INTO t2 VALUES ({i}, {})", i * 2)).unwrap();
        db.execute(&format!("INSERT INTO t3 VALUES ({i}, {})", i * 3)).unwrap();
        db.execute(&format!("INSERT INTO t4 VALUES ({i}, {})", i * 4)).unwrap();
    }
    let r = db
        .query(
            "SELECT SUM(t1.v + t2.v + t3.v + t4.v) AS s
             FROM t1, t2, t3, t4
             WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k",
        )
        .unwrap();
    let expected: i64 = (0..15).map(|i| i + 2 * i + 3 * i + 4 * i).sum();
    assert_eq!(r.scalar().unwrap().as_integer(), Some(expected));
}
