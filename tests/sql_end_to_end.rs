//! End-to-end SQL tests: parse → bind → optimize → physical plan →
//! parallel execution, checked against directly-computed answers.

use lardb::{DataType, Database, Partitioning, Row, Schema, Value, Vector};

fn db() -> Database {
    Database::new(4)
}

#[test]
fn scalar_aggregates_over_generated_data() {
    let db = db();
    db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
    let rows: Vec<Row> = (0..100)
        .map(|i| Row::new(vec![Value::Integer(i), Value::Double((i as f64) * 0.5)]))
        .collect();
    db.insert_rows("t", rows).unwrap();

    let r = db
        .query("SELECT SUM(v) AS s, COUNT(*) AS n, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS m FROM t")
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row.value(0).as_double(), Some(0.5 * (99.0 * 100.0 / 2.0)));
    assert_eq!(row.value(1).as_integer(), Some(100));
    assert_eq!(row.value(2).as_double(), Some(0.0));
    assert_eq!(row.value(3).as_double(), Some(49.5));
    assert_eq!(row.value(4).as_double(), Some(24.75));
}

#[test]
fn where_and_group_by_with_expressions() {
    let db = db();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.insert_rows("t", (0..50).map(|i| Row::new(vec![Value::Integer(i)])))
        .unwrap();
    // Integer division groups ids into buckets of 10.
    let r = db
        .query("SELECT id / 10 AS bucket, COUNT(*) AS n FROM t WHERE id < 30 GROUP BY id / 10")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        assert_eq!(row.value(1).as_integer(), Some(10));
    }
}

#[test]
fn multi_way_join_matches_manual_computation() {
    let db = db();
    db.execute("CREATE TABLE a (k INTEGER, x DOUBLE)").unwrap();
    db.execute("CREATE TABLE b (k INTEGER, y DOUBLE)").unwrap();
    db.execute("CREATE TABLE c (k INTEGER, z DOUBLE)").unwrap();
    for i in 0..20i64 {
        db.execute(&format!("INSERT INTO a VALUES ({i}, {})", i as f64)).unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({i}, {})", (i * 2) as f64)).unwrap();
        db.execute(&format!("INSERT INTO c VALUES ({i}, {})", (i * 3) as f64)).unwrap();
    }
    let r = db
        .query(
            "SELECT SUM(a.x * b.y * c.z) AS s
             FROM a, b, c
             WHERE a.k = b.k AND b.k = c.k",
        )
        .unwrap();
    let expected: f64 = (0..20).map(|i| (i * i * 2 * i * 3) as f64).sum();
    assert_eq!(r.scalar().unwrap().as_double(), Some(expected));
}

#[test]
fn vectors_through_views_and_subqueries() {
    let db = db();
    db.create_table(
        "x",
        Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Vector(Some(3)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    for i in 0..10i64 {
        db.insert_rows(
            "x",
            [Row::new(vec![
                Value::Integer(i),
                Value::vector(Vector::from_fn(3, |j| (i as f64) + j as f64)),
            ])],
        )
        .unwrap();
    }
    db.execute("CREATE VIEW norms AS SELECT id, inner_product(v, v) AS nn FROM x")
        .unwrap();
    let r = db
        .query(
            "SELECT MAX(q.nn) AS m FROM (SELECT nn FROM norms WHERE norms.id < 5) AS q",
        )
        .unwrap();
    // id = 4 → vector [4,5,6] → 16+25+36 = 77
    assert_eq!(r.scalar().unwrap().as_double(), Some(77.0));
}

#[test]
fn vectorize_builds_vector_from_normalized_rows() {
    // §3.3: SELECT VECTORIZE(label_scalar(y_i, i)) FROM y
    let db = db();
    db.execute("CREATE TABLE y (i INTEGER, y_i DOUBLE)").unwrap();
    for i in 0..6i64 {
        db.execute(&format!("INSERT INTO y VALUES ({i}, {})", (i * i) as f64)).unwrap();
    }
    let r = db.query("SELECT VECTORIZE(label_scalar(y_i, i)) AS v FROM y").unwrap();
    let v = r.scalar().unwrap().as_vector().unwrap().clone();
    assert_eq!(v.as_slice(), &[0.0, 1.0, 4.0, 9.0, 16.0, 25.0]);
}

#[test]
fn rowmatrix_assembles_matrix_from_vectors() {
    // §3.3's two-step construction: VECTORIZE per row, then ROWMATRIX.
    let db = db();
    db.execute("CREATE TABLE mat (row INTEGER, col INTEGER, value DOUBLE)").unwrap();
    for r in 0..3i64 {
        for c in 0..4i64 {
            db.execute(&format!("INSERT INTO mat VALUES ({r}, {c}, {})", (r * 10 + c) as f64))
                .unwrap();
        }
    }
    db.execute(
        "CREATE VIEW vecs AS
         SELECT VECTORIZE(label_scalar(value, col)) AS vec, row
         FROM mat GROUP BY row",
    )
    .unwrap();
    let r = db
        .query("SELECT ROWMATRIX(label_vector(vec, row)) AS m FROM vecs")
        .unwrap();
    let m = r.scalar().unwrap().as_matrix().unwrap().clone();
    assert_eq!(m.shape(), (3, 4));
    assert_eq!(m.get(2, 3).unwrap(), 23.0);
    assert_eq!(m.get(0, 1).unwrap(), 1.0);
}

#[test]
fn colmatrix_transposed_assembly() {
    let db = db();
    db.execute("CREATE TABLE mat (row INTEGER, col INTEGER, value DOUBLE)").unwrap();
    for r in 0..2i64 {
        for c in 0..3i64 {
            db.execute(&format!("INSERT INTO mat VALUES ({r}, {c}, {})", (r * 10 + c) as f64))
                .unwrap();
        }
    }
    // Group by column, collect as columns.
    db.execute(
        "CREATE VIEW cvecs AS
         SELECT VECTORIZE(label_scalar(value, row)) AS vec, col
         FROM mat GROUP BY col",
    )
    .unwrap();
    let r = db
        .query("SELECT COLMATRIX(label_vector(vec, col)) AS m FROM cvecs")
        .unwrap();
    let m = r.scalar().unwrap().as_matrix().unwrap().clone();
    assert_eq!(m.shape(), (2, 3));
    assert_eq!(m.get(1, 2).unwrap(), 12.0);
}

#[test]
fn normalization_via_get_scalar_and_label_table() {
    // §3.3's reverse direction: vector → relational, via a label table.
    let db = db();
    db.create_table(
        "vecs",
        Schema::from_pairs(&[("vec", DataType::Vector(Some(4)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows(
        "vecs",
        [Row::new(vec![Value::vector(Vector::from_slice(&[5.0, 6.0, 7.0, 8.0]))])],
    )
    .unwrap();
    db.execute("CREATE TABLE label (id INTEGER)").unwrap();
    for i in 0..4i64 {
        db.execute(&format!("INSERT INTO label VALUES ({i})")).unwrap();
    }
    let r = db
        .query(
            "SELECT label.id, get_scalar(vecs.vec, label.id) AS x FROM vecs, label",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 4);
    let mut got: Vec<(i64, f64)> = r
        .rows
        .iter()
        .map(|row| {
            (row.value(0).as_integer().unwrap(), row.value(1).as_double().unwrap())
        })
        .collect();
    got.sort_by_key(|(i, _)| *i);
    assert_eq!(got, vec![(0, 5.0), (1, 6.0), (2, 7.0), (3, 8.0)]);
}

#[test]
fn hadamard_product_per_row() {
    // §3.2: SELECT mat * mat FROM m returns the Hadamard product per tuple.
    let db = db();
    db.create_table(
        "m",
        Schema::from_pairs(&[("mat", DataType::Matrix(Some(2), Some(2)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows(
        "m",
        [Row::new(vec![Value::matrix(
            lardb::Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap(),
        )])],
    )
    .unwrap();
    let r = db.query("SELECT mat * mat AS h FROM m").unwrap();
    let h = r.scalar().unwrap().as_matrix().unwrap().clone();
    assert_eq!(h.get(1, 1).unwrap(), 16.0);
}

#[test]
fn dimension_mismatch_is_a_compile_error() {
    // §3.1: sized declarations are checked before execution.
    let db = db();
    db.execute("CREATE TABLE m (mat MATRIX[10][10], vec VECTOR[100])").unwrap();
    let err = db.query("SELECT matrix_vector_multiply(m.mat, m.vec) AS r FROM m");
    assert!(err.is_err());
    // With matching sizes it compiles.
    db.execute("CREATE TABLE m2 (mat MATRIX[10][10], vec VECTOR[10])").unwrap();
    assert!(db.query("SELECT matrix_vector_multiply(m2.mat, m2.vec) AS r FROM m2").is_ok());
}

#[test]
fn unsized_vector_defers_to_runtime_error() {
    // §3.1: VECTOR[] compiles but may fail at runtime.
    let db = db();
    db.create_table(
        "m",
        Schema::from_pairs(&[
            ("mat", DataType::Matrix(Some(2), Some(2))),
            ("vec", DataType::Vector(None)),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows(
        "m",
        [Row::new(vec![
            Value::matrix(lardb::Matrix::identity(2)),
            Value::vector(Vector::zeros(3)), // wrong length, accepted by VECTOR[]
        ])],
    )
    .unwrap();
    let err = db.query("SELECT matrix_vector_multiply(mat, vec) AS r FROM m");
    assert!(err.is_err(), "runtime dimension error expected");
}

#[test]
fn scalar_vector_arithmetic_in_sql() {
    let db = db();
    db.create_table(
        "x",
        Schema::from_pairs(&[("v", DataType::Vector(Some(2))), ("s", DataType::Double)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows(
        "x",
        [Row::new(vec![
            Value::vector(Vector::from_slice(&[1.0, 2.0])),
            Value::Double(10.0),
        ])],
    )
    .unwrap();
    let r = db.query("SELECT v * s + v AS out FROM x").unwrap();
    let v = r.scalar().unwrap().as_vector().unwrap().clone();
    assert_eq!(v.as_slice(), &[11.0, 22.0]);
}

#[test]
fn order_by_limit() {
    let db = db();
    db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
    for i in 0..10i64 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", (10 - i) as f64)).unwrap();
    }
    let r = db
        .query("SELECT id, v FROM t ORDER BY v ASC, id DESC LIMIT 3")
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|x| x.value(0).as_integer().unwrap()).collect();
    assert_eq!(ids, vec![9, 8, 7]);
}

#[test]
fn worker_counts_do_not_change_answers() {
    // The same query on 1, 2, 3 and 8 workers must agree — distribution is
    // an implementation detail.
    let mut answers = Vec::new();
    for workers in [1, 2, 3, 8] {
        let db = Database::new(workers);
        db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
        db.insert_rows(
            "t",
            (0..97).map(|i| {
                Row::new(vec![Value::Integer(i % 7), Value::Double(i as f64)])
            }),
        )
        .unwrap();
        let r = db
            .query("SELECT id, SUM(v) AS s FROM t GROUP BY id ORDER BY id")
            .unwrap();
        let table: Vec<(i64, f64)> = r
            .rows
            .iter()
            .map(|row| {
                (row.value(0).as_integer().unwrap(), row.value(1).as_double().unwrap())
            })
            .collect();
        answers.push(table);
    }
    for w in &answers[1..] {
        assert_eq!(w, &answers[0]);
    }
}

#[test]
fn explain_output_reflects_table() {
    let db = db();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    let plan = db.explain("SELECT id FROM t WHERE id = 3").unwrap();
    assert!(plan.contains("TableScan(t)"));
    assert!(plan.contains("Filter"));
}

#[test]
fn explain_analyze_reports_actual_encoded_bytes() {
    let db = db().with_transport(lardb::TransportMode::Serialized);
    db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
    let rows: Vec<Row> = (0..60)
        .map(|i| Row::new(vec![Value::Integer(i), Value::Double(i as f64)]))
        .collect();
    db.insert_rows("t", rows).unwrap();

    let out = db
        .execute(
            "EXPLAIN ANALYZE SELECT t1.id, SUM(t1.v * t2.v) AS s \
             FROM t AS t1, t AS t2 WHERE t1.id = t2.id GROUP BY t1.id",
        )
        .unwrap();
    let lardb::database::Response::Explained(text) = out else {
        panic!("EXPLAIN ANALYZE should return Explained");
    };
    assert!(text.contains("== Physical Plan =="), "{text}");
    assert!(text.contains("== Execution Statistics =="), "{text}");
    // Per-channel detail lines prove the bytes are actual wire frames,
    // not pointer-mode estimates.
    assert!(text.contains(" frames"), "{text}");
    assert!(text.contains("ch 0->"), "{text}");

    // Plain EXPLAIN stays plan-only.
    let plain = db
        .execute("EXPLAIN SELECT t1.id FROM t AS t1")
        .unwrap();
    let lardb::database::Response::Explained(plain) = plain else {
        panic!("EXPLAIN should return Explained");
    };
    assert!(!plain.contains("== Execution Statistics =="), "{plain}");
}

#[test]
fn having_filters_groups() {
    let db = db();
    db.execute("CREATE TABLE t (g INTEGER, v DOUBLE)").unwrap();
    for i in 0..30i64 {
        db.execute(&format!("INSERT INTO t VALUES ({}, {})", i % 5, i as f64)).unwrap();
    }
    // groups 0..5, each 6 rows; HAVING keeps groups whose sum > 80
    let r = db
        .query("SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 80 ORDER BY g")
        .unwrap();
    // sums: g: g + g+5 + ... (6 terms) = 6g + (0+5+10+15+20+25) = 6g + 75
    // > 80 → g ≥ 1
    let gs: Vec<i64> = r.rows.iter().map(|x| x.value(0).as_integer().unwrap()).collect();
    assert_eq!(gs, vec![1, 2, 3, 4]);
}

#[test]
fn having_with_new_aggregate_not_in_select() {
    let db = db();
    db.execute("CREATE TABLE t (g INTEGER, v DOUBLE)").unwrap();
    for i in 0..20i64 {
        db.execute(&format!("INSERT INTO t VALUES ({}, {})", i % 4, i as f64)).unwrap();
    }
    let r = db
        .query("SELECT g FROM t GROUP BY g HAVING COUNT(*) > 4 ORDER BY g")
        .unwrap();
    assert_eq!(r.rows.len(), 4); // all groups have 5 rows
}

#[test]
fn distinct_deduplicates() {
    let db = db();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    for i in 0..24i64 {
        db.execute(&format!("INSERT INTO t VALUES ({}, {})", i % 3, i % 2)).unwrap();
    }
    let r = db.query("SELECT DISTINCT a, b FROM t ORDER BY a, b").unwrap();
    assert_eq!(r.rows.len(), 6);
    let first = &r.rows[0];
    assert_eq!(first.value(0).as_integer(), Some(0));
    assert_eq!(first.value(1).as_integer(), Some(0));
    // DISTINCT over a single column too
    let r = db.query("SELECT DISTINCT a FROM t").unwrap();
    assert_eq!(r.rows.len(), 3);
}

/// Loads a vector table and returns the EXPLAIN ANALYZE text for the
/// distributed Gram-matrix query on it.
fn explain_analyze_gram(db: &Database) -> String {
    db.create_table(
        "xg",
        Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Vector(Some(4)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    for i in 0..40i64 {
        db.insert_rows(
            "xg",
            [Row::new(vec![
                Value::Integer(i),
                Value::vector(Vector::from_vec(vec![i as f64, 1.0, 2.0, 3.0])),
            ])],
        )
        .unwrap();
    }
    let out = db
        .execute("EXPLAIN ANALYZE SELECT SUM(outer_product(x.v, x.v)) AS g FROM xg AS x")
        .unwrap();
    let lardb::database::Response::Explained(text) = out else {
        panic!("EXPLAIN ANALYZE should return Explained");
    };
    text
}

#[test]
fn explain_analyze_gram_prints_estimate_vs_actual() {
    let text = explain_analyze_gram(&db().with_transport(lardb::TransportMode::Serialized));
    // Operator rows for the distributed matmul pipeline are present.
    assert!(text.contains("== Execution Statistics =="), "{text}");
    assert!(text.contains("TableScan"), "{text}");
    assert!(text.contains("HashAggregate"), "{text}");
    assert!(text.contains("Exchange"), "{text}");
    // Under the serialized transport, shuffled bytes are measured wire
    // frames and nonzero: at least one non-`0.000` MB figure appears in
    // an exchange row.
    assert!(text.contains(" frames"), "{text}");
    let stats_block = text.split("== Execution Statistics ==").nth(1).unwrap();
    let exchanged: f64 = stats_block
        .lines()
        .filter(|l| l.contains("Exchange"))
        .filter_map(|l| l.split_whitespace().rev().nth(2).and_then(|m| m.parse::<f64>().ok()))
        .sum();
    assert!(exchanged > 0.0, "serialized exchanges should report nonzero MB:\n{text}");
    // The estimate-vs-actual table is appended, with populated columns.
    assert!(text.contains("== Estimate vs Actual =="), "{text}");
    for col in ["est_rows", "act_rows", "q_rows", "est_MB", "act_MB", "q_MB"] {
        assert!(text.contains(col), "missing column {col}:\n{text}");
    }
    let est_block = text.split("== Estimate vs Actual ==").nth(1).unwrap();
    let scan_line = est_block
        .lines()
        .find(|l| l.contains("TableScan"))
        .expect("scan row in estimate table");
    let fields: Vec<&str> = scan_line.split_whitespace().collect();
    // id, label..., then six numeric columns; actual rows (4th from end
    // is act_MB... count from the right: q_MB, act_MB, est_MB, q_rows,
    // act_rows, est_rows).
    let act_rows: f64 = fields[fields.len() - 5].parse().unwrap();
    assert_eq!(act_rows, 40.0, "scan actual rows:\n{text}");
    let q_rows: f64 = fields[fields.len() - 4].parse().unwrap();
    assert!(q_rows >= 1.0, "q-error is ≥ 1 by definition:\n{text}");
}

#[test]
fn explain_analyze_marks_pointer_bytes_as_estimates() {
    // Default transport is pointer mode: shuffled bytes are modeled, not
    // measured, and the stats table marks them with `~`.
    let text = explain_analyze_gram(&db());
    let stats_block = text.split("== Execution Statistics ==").nth(1).unwrap();
    assert!(
        stats_block.lines().any(|l| l.contains("Exchange") && l.contains('~')),
        "pointer-mode exchange rows should carry a ~ estimate marker:\n{text}"
    );
    // The serialized run above asserts measured bytes have no marker.
    let measured = explain_analyze_gram(&db().with_transport(lardb::TransportMode::Serialized));
    let stats_block = measured.split("== Execution Statistics ==").nth(1).unwrap();
    assert!(
        !stats_block.lines().any(|l| l.contains("Exchange") && l.contains('~')),
        "serialized exchange bytes are measured, not estimated:\n{measured}"
    );
}

#[test]
fn show_metrics_matches_exec_stats_totals() {
    let db = db().with_transport(lardb::TransportMode::Serialized);
    db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
    db.insert_rows(
        "t",
        (0..80).map(|i| Row::new(vec![Value::Integer(i), Value::Double(i as f64)])),
    )
    .unwrap();
    let r = db
        .query(
            "SELECT t1.id, SUM(t1.v * t2.v) AS s \
             FROM t AS t1, t AS t2 WHERE t1.id = t2.id GROUP BY t1.id",
        )
        .unwrap();
    let shuffled = r.stats.total_bytes_shuffled() as f64;
    assert!(shuffled > 0.0, "join under serialized transport shuffles bytes");

    // SHOW METRICS returns a queryable relation whose counters cover at
    // least this query's totals (the registry is process-wide, so ≥).
    let lardb::database::Response::Rows(m) = db.execute("SHOW METRICS").unwrap() else {
        panic!("SHOW METRICS should return rows");
    };
    let metric = |name: &str| -> f64 {
        m.rows
            .iter()
            .find(|row| row.value(0).as_str() == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .value(2)
            .as_double()
            .unwrap()
    };
    assert!(metric("exec.bytes_shuffled") >= shuffled, "bytes counter covers the query");
    assert!(metric("exec.rows_shuffled") >= r.stats.total_rows_shuffled() as f64);
    assert!(metric("exec.plans_run") >= 1.0);
    assert!(metric("db.queries") >= 1.0);

    // The same data is visible as a SQL-queryable virtual table.
    let n = db.query("SELECT COUNT(*) AS n FROM metrics").unwrap();
    assert!(n.scalar().unwrap().as_integer().unwrap() >= m.rows.len() as i64 - 1);
}
