//! Distributed-vs-serial equivalence: the §3.4 tiled big-matrix story and
//! the general guarantee that worker count / partitioning / shuffling are
//! invisible in query answers.

use lardb::{DataType, Database, Matrix, Partitioning, Row, Schema, TransportMode, Value};
use lardb_storage::gen;

/// Loads a tiled square matrix as `name(tileRow, tileCol, mat)` — §3.4's
/// bigMatrix layout.
fn load_tiled(db: &Database, name: &str, seed: u64, tiles: usize, tile: usize) -> Matrix {
    db.create_table(
        name,
        Schema::from_pairs(&[
            ("tileRow", DataType::Integer),
            ("tileCol", DataType::Integer),
            ("mat", DataType::Matrix(None, None)),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    let rows = gen::tiled_matrix_rows(seed, tiles, tile);
    let full = gen::assemble_tiles(&rows, tiles, tile);
    db.insert_rows(name, rows).unwrap();
    full
}

/// The paper's §3.4 distributed tile multiply, verbatim.
const TILE_MULTIPLY: &str = "SELECT lhs.tileRow, rhs.tileCol,
        SUM(matrix_multiply(lhs.mat, rhs.mat)) AS mat
 FROM bigMatrix AS lhs, anotherBigMat AS rhs
 WHERE lhs.tileCol = rhs.tileRow
 GROUP BY lhs.tileRow, rhs.tileCol";

#[test]
fn tiled_matrix_multiply_matches_kernel() {
    let (tiles, tile) = (3, 8);
    let db = Database::new(4);
    let a = load_tiled(&db, "bigMatrix", 11, tiles, tile);
    let b = load_tiled(&db, "anotherBigMat", 22, tiles, tile);

    let r = db.query(TILE_MULTIPLY).unwrap();
    assert_eq!(r.rows.len(), tiles * tiles);

    let expected = a.multiply(&b).unwrap();
    for row in &r.rows {
        let tr = row.value(0).as_integer().unwrap() as usize;
        let tc = row.value(1).as_integer().unwrap() as usize;
        let m = row.value(2).as_matrix().unwrap();
        let sub = expected.submatrix(tr * tile, tc * tile, tile, tile).unwrap();
        assert!(m.approx_eq(&sub, 1e-9), "tile ({tr},{tc}) mismatch");
    }
}

#[test]
fn tiled_multiply_is_worker_count_invariant() {
    let (tiles, tile) = (2, 5);
    let mut reference: Option<Vec<(i64, i64, Vec<f64>)>> = None;
    for workers in [1, 2, 5, 8] {
        let db = Database::new(workers);
        load_tiled(&db, "bigMatrix", 5, tiles, tile);
        load_tiled(&db, "anotherBigMat", 6, tiles, tile);
        let r = db.query(TILE_MULTIPLY).unwrap();
        let mut rows: Vec<(i64, i64, Vec<f64>)> = r
            .rows
            .iter()
            .map(|row| {
                (
                    row.value(0).as_integer().unwrap(),
                    row.value(1).as_integer().unwrap(),
                    row.value(2).as_matrix().unwrap().as_slice().to_vec(),
                )
            })
            .collect();
        rows.sort_by_key(|(r, c, _)| (*r, *c));
        match &reference {
            None => reference = Some(rows),
            Some(expect) => {
                assert_eq!(expect.len(), rows.len());
                for (e, g) in expect.iter().zip(&rows) {
                    assert_eq!((e.0, e.1), (g.0, g.1));
                    for (x, y) in e.2.iter().zip(&g.2) {
                        assert!((x - y).abs() < 1e-9, "workers={workers}");
                    }
                }
            }
        }
    }
}

#[test]
fn hash_partitioned_tiles_reduce_shuffles() {
    // Partitioning the left operand on tileCol and the right on tileRow
    // co-locates join partners: the join itself shuffles less.
    let (tiles, tile) = (4, 4);

    let run = |left_part: Partitioning, right_part: Partitioning| -> usize {
        let db = Database::new(4);
        db.create_table(
            "bigMatrix",
            Schema::from_pairs(&[
                ("tileRow", DataType::Integer),
                ("tileCol", DataType::Integer),
                ("mat", DataType::Matrix(None, None)),
            ]),
            left_part,
        )
        .unwrap();
        db.create_table(
            "anotherBigMat",
            Schema::from_pairs(&[
                ("tileRow", DataType::Integer),
                ("tileCol", DataType::Integer),
                ("mat", DataType::Matrix(None, None)),
            ]),
            right_part,
        )
        .unwrap();
        db.insert_rows("bigMatrix", gen::tiled_matrix_rows(31, tiles, tile)).unwrap();
        db.insert_rows("anotherBigMat", gen::tiled_matrix_rows(32, tiles, tile))
            .unwrap();
        let r = db.query(TILE_MULTIPLY).unwrap();
        r.stats.total_bytes_shuffled()
    };

    let unaligned = run(Partitioning::RoundRobin, Partitioning::RoundRobin);
    // bigMatrix partitioned by tileCol (column 1), anotherBigMat by tileRow
    // (column 0): both join sides are already in place.
    let aligned = run(Partitioning::Hash(1), Partitioning::Hash(0));
    assert!(
        aligned < unaligned,
        "pre-partitioned tiles should shuffle less: aligned={aligned} unaligned={unaligned}"
    );
}

#[test]
fn exchange_accounting_charges_full_matrix_bytes() {
    // A join that must move matrices counts their real payload, not the
    // Arc pointer size (the simulation's stand-in for network cost).
    let db = Database::new(4);
    let tile = 10;
    load_tiled(&db, "bigMatrix", 77, 2, tile);
    load_tiled(&db, "anotherBigMat", 78, 2, tile);
    let r = db.query(TILE_MULTIPLY).unwrap();
    // Every tile is 10×10×8 = 800 bytes; with 8 tiles hashing around plus
    // aggregation shuffles, at least a few tiles' worth must have moved.
    assert!(
        r.stats.total_bytes_shuffled() >= 800,
        "bytes={}",
        r.stats.total_bytes_shuffled()
    );
}

#[test]
fn replicated_dimension_table_joins_without_exchange() {
    let db = Database::new(4);
    db.create_table(
        "dim",
        Schema::from_pairs(&[("k", DataType::Integer), ("name", DataType::Varchar)]),
        Partitioning::Replicated,
    )
    .unwrap();
    db.create_table(
        "fact",
        Schema::from_pairs(&[("k", DataType::Integer), ("v", DataType::Double)]),
        Partitioning::Hash(0),
    )
    .unwrap();
    for i in 0..10i64 {
        db.insert_rows(
            "dim",
            [Row::new(vec![Value::Integer(i), Value::varchar(format!("n{i}"))])],
        )
        .unwrap();
    }
    for i in 0..100i64 {
        db.insert_rows(
            "fact",
            [Row::new(vec![Value::Integer(i % 10), Value::Double(1.0)])],
        )
        .unwrap();
    }
    let r = db
        .query("SELECT dim.name, SUM(fact.v) AS s FROM dim, fact WHERE dim.k = fact.k GROUP BY dim.name")
        .unwrap();
    assert_eq!(r.rows.len(), 10);
    for row in &r.rows {
        assert_eq!(row.value(1).as_double(), Some(10.0));
    }
    // The join itself required no hash exchange (broadcast-free: dim is
    // already everywhere). Aggregation may still shuffle its partials.
    let join_exchanges = r
        .stats
        .operators()
        .iter()
        .filter(|o| o.label == "Exchange(Hash)")
        .count();
    assert!(join_exchanges <= 1, "{}", r.stats.display_table());
}

/// Canonical row order for comparing result sets that may be produced in
/// different (hash-map-dependent) orders across runs.
fn canonicalized(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by_cached_key(|r| format!("{r:?}"));
    rows
}

fn setup_vector_tables(db: &Database, n: usize, dims: usize, seed: u64) {
    db.create_table(
        "x_vm",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("value", DataType::Vector(Some(dims))),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x_vm", gen::vector_rows(seed, n, dims)).unwrap();
    db.create_table(
        "y",
        Schema::from_pairs(&[("i", DataType::Integer), ("y_i", DataType::Double)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("y", gen::regression_targets(seed, n, dims, 0.01)).unwrap();
}

fn setup_tuple_table(db: &Database, n: usize, dims: usize, seed: u64) {
    db.create_table(
        "x",
        Schema::from_pairs(&[
            ("row_index", DataType::Integer),
            ("col_index", DataType::Integer),
            ("value", DataType::Double),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x", gen::tuple_rows(seed, n, dims)).unwrap();
}

/// Every workload (the paper's Gram / regression / distance in both tuple
/// and vector form, plus the §3.4 tile multiply) must return identical
/// rows whether exchanges move `Arc` pointers, wire-encoded frames over
/// channels, or wire-encoded frames over loopback TCP — at one worker
/// (no exchange traffic) and at four (real shuffles).
#[test]
fn all_workloads_identical_under_every_transport() {
    type Setup = fn(&Database);
    let workloads: &[(&str, Setup, &str)] = &[
        (
            "tile_multiply",
            |db| {
                load_tiled(db, "bigMatrix", 11, 3, 6);
                load_tiled(db, "anotherBigMat", 22, 3, 6);
            },
            TILE_MULTIPLY,
        ),
        (
            "gram_vector",
            |db| setup_vector_tables(db, 60, 5, 7),
            "SELECT SUM(outer_product(x.value, x.value)) AS g FROM x_vm AS x",
        ),
        (
            "gram_tuple",
            |db| setup_tuple_table(db, 40, 4, 9),
            "SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value) AS v
             FROM x AS x1, x AS x2
             WHERE x1.row_index = x2.row_index
             GROUP BY x1.col_index, x2.col_index",
        ),
        (
            "regression_vector",
            |db| setup_vector_tables(db, 60, 5, 13),
            "SELECT matrix_vector_multiply(
                 matrix_inverse(SUM(outer_product(x.value, x.value))),
                 SUM(x.value * y.y_i)) AS beta
             FROM x_vm AS x, y
             WHERE x.id = y.i",
        ),
        (
            "distance_vector",
            |db| setup_vector_tables(db, 30, 4, 17),
            "SELECT a.id, MIN(inner_product(a.value, b.value)) AS d
             FROM x_vm AS a, x_vm AS b
             WHERE a.id <> b.id
             GROUP BY a.id",
        ),
    ];

    for (name, setup, sql) in workloads {
        for workers in [1usize, 4] {
            let mut reference: Option<Vec<Row>> = None;
            for transport in TransportMode::ALL {
                let db = Database::new(workers).with_transport(transport);
                setup(&db);
                let r = db
                    .query(sql)
                    .unwrap_or_else(|e| panic!("{name} W={workers} {transport:?}: {e}"));
                if transport.is_serialized() && workers > 1 {
                    assert!(
                        r.stats.total_frames() > 0,
                        "{name} W={workers} {transport:?}: no encoded frames metered"
                    );
                    assert!(
                        r.stats.total_bytes_shuffled() > 0,
                        "{name} W={workers} {transport:?}: no encoded bytes metered"
                    );
                }
                let rows = canonicalized(r.rows);
                match &reference {
                    None => reference = Some(rows),
                    Some(expect) => assert_eq!(
                        expect, &rows,
                        "{name} W={workers} {transport:?} diverged from pointer mode"
                    ),
                }
            }
        }
    }
}

#[test]
fn load_imbalance_visible_with_few_blocks() {
    // §5 observed that ~100 blocks hashed onto 80 cores leave some cores
    // with several blocks: with hash partitioning of few rows, partition
    // sizes are uneven. We check the phenomenon is reproducible: hash 16
    // tiles onto 8 workers and observe a nonuniform partition histogram at
    // least sometimes — deterministic here by seeding.
    let db = Database::new(8);
    db.create_table(
        "t",
        Schema::from_pairs(&[("k", DataType::Integer), ("m", DataType::Matrix(None, None))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    for i in 0..16i64 {
        db.insert_rows(
            "t",
            [Row::new(vec![Value::Integer(i), Value::matrix(Matrix::zeros(4, 4))])],
        )
        .unwrap();
    }
    let table = db.catalog().table("t").unwrap();
    let sizes: Vec<usize> =
        (0..8).map(|p| table.read().partition(p).len()).collect();
    assert_eq!(sizes.iter().sum::<usize>(), 16);
    // Perfectly even would be all 2s; hashing almost surely is not.
    let max = *sizes.iter().max().unwrap();
    assert!(max >= 2, "{sizes:?}");
}
