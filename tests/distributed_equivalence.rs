//! Distributed-vs-serial equivalence: the §3.4 tiled big-matrix story and
//! the general guarantee that worker count / partitioning / shuffling are
//! invisible in query answers.

use lardb::{DataType, Database, Matrix, Partitioning, Row, Schema, Value};
use lardb_storage::gen;

/// Loads a tiled square matrix as `name(tileRow, tileCol, mat)` — §3.4's
/// bigMatrix layout.
fn load_tiled(db: &Database, name: &str, seed: u64, tiles: usize, tile: usize) -> Matrix {
    db.create_table(
        name,
        Schema::from_pairs(&[
            ("tileRow", DataType::Integer),
            ("tileCol", DataType::Integer),
            ("mat", DataType::Matrix(None, None)),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    let rows = gen::tiled_matrix_rows(seed, tiles, tile);
    let full = gen::assemble_tiles(&rows, tiles, tile);
    db.insert_rows(name, rows).unwrap();
    full
}

/// The paper's §3.4 distributed tile multiply, verbatim.
const TILE_MULTIPLY: &str = "SELECT lhs.tileRow, rhs.tileCol,
        SUM(matrix_multiply(lhs.mat, rhs.mat)) AS mat
 FROM bigMatrix AS lhs, anotherBigMat AS rhs
 WHERE lhs.tileCol = rhs.tileRow
 GROUP BY lhs.tileRow, rhs.tileCol";

#[test]
fn tiled_matrix_multiply_matches_kernel() {
    let (tiles, tile) = (3, 8);
    let db = Database::new(4);
    let a = load_tiled(&db, "bigMatrix", 11, tiles, tile);
    let b = load_tiled(&db, "anotherBigMat", 22, tiles, tile);

    let r = db.query(TILE_MULTIPLY).unwrap();
    assert_eq!(r.rows.len(), tiles * tiles);

    let expected = a.multiply(&b).unwrap();
    for row in &r.rows {
        let tr = row.value(0).as_integer().unwrap() as usize;
        let tc = row.value(1).as_integer().unwrap() as usize;
        let m = row.value(2).as_matrix().unwrap();
        let sub = expected.submatrix(tr * tile, tc * tile, tile, tile).unwrap();
        assert!(m.approx_eq(&sub, 1e-9), "tile ({tr},{tc}) mismatch");
    }
}

#[test]
fn tiled_multiply_is_worker_count_invariant() {
    let (tiles, tile) = (2, 5);
    let mut reference: Option<Vec<(i64, i64, Vec<f64>)>> = None;
    for workers in [1, 2, 5, 8] {
        let db = Database::new(workers);
        load_tiled(&db, "bigMatrix", 5, tiles, tile);
        load_tiled(&db, "anotherBigMat", 6, tiles, tile);
        let r = db.query(TILE_MULTIPLY).unwrap();
        let mut rows: Vec<(i64, i64, Vec<f64>)> = r
            .rows
            .iter()
            .map(|row| {
                (
                    row.value(0).as_integer().unwrap(),
                    row.value(1).as_integer().unwrap(),
                    row.value(2).as_matrix().unwrap().as_slice().to_vec(),
                )
            })
            .collect();
        rows.sort_by_key(|(r, c, _)| (*r, *c));
        match &reference {
            None => reference = Some(rows),
            Some(expect) => {
                assert_eq!(expect.len(), rows.len());
                for (e, g) in expect.iter().zip(&rows) {
                    assert_eq!((e.0, e.1), (g.0, g.1));
                    for (x, y) in e.2.iter().zip(&g.2) {
                        assert!((x - y).abs() < 1e-9, "workers={workers}");
                    }
                }
            }
        }
    }
}

#[test]
fn hash_partitioned_tiles_reduce_shuffles() {
    // Partitioning the left operand on tileCol and the right on tileRow
    // co-locates join partners: the join itself shuffles less.
    let (tiles, tile) = (4, 4);

    let run = |left_part: Partitioning, right_part: Partitioning| -> usize {
        let db = Database::new(4);
        db.create_table(
            "bigMatrix",
            Schema::from_pairs(&[
                ("tileRow", DataType::Integer),
                ("tileCol", DataType::Integer),
                ("mat", DataType::Matrix(None, None)),
            ]),
            left_part,
        )
        .unwrap();
        db.create_table(
            "anotherBigMat",
            Schema::from_pairs(&[
                ("tileRow", DataType::Integer),
                ("tileCol", DataType::Integer),
                ("mat", DataType::Matrix(None, None)),
            ]),
            right_part,
        )
        .unwrap();
        db.insert_rows("bigMatrix", gen::tiled_matrix_rows(31, tiles, tile)).unwrap();
        db.insert_rows("anotherBigMat", gen::tiled_matrix_rows(32, tiles, tile))
            .unwrap();
        let r = db.query(TILE_MULTIPLY).unwrap();
        r.stats.total_bytes_shuffled()
    };

    let unaligned = run(Partitioning::RoundRobin, Partitioning::RoundRobin);
    // bigMatrix partitioned by tileCol (column 1), anotherBigMat by tileRow
    // (column 0): both join sides are already in place.
    let aligned = run(Partitioning::Hash(1), Partitioning::Hash(0));
    assert!(
        aligned < unaligned,
        "pre-partitioned tiles should shuffle less: aligned={aligned} unaligned={unaligned}"
    );
}

#[test]
fn exchange_accounting_charges_full_matrix_bytes() {
    // A join that must move matrices counts their real payload, not the
    // Arc pointer size (the simulation's stand-in for network cost).
    let db = Database::new(4);
    let tile = 10;
    load_tiled(&db, "bigMatrix", 77, 2, tile);
    load_tiled(&db, "anotherBigMat", 78, 2, tile);
    let r = db.query(TILE_MULTIPLY).unwrap();
    // Every tile is 10×10×8 = 800 bytes; with 8 tiles hashing around plus
    // aggregation shuffles, at least a few tiles' worth must have moved.
    assert!(
        r.stats.total_bytes_shuffled() >= 800,
        "bytes={}",
        r.stats.total_bytes_shuffled()
    );
}

#[test]
fn replicated_dimension_table_joins_without_exchange() {
    let db = Database::new(4);
    db.create_table(
        "dim",
        Schema::from_pairs(&[("k", DataType::Integer), ("name", DataType::Varchar)]),
        Partitioning::Replicated,
    )
    .unwrap();
    db.create_table(
        "fact",
        Schema::from_pairs(&[("k", DataType::Integer), ("v", DataType::Double)]),
        Partitioning::Hash(0),
    )
    .unwrap();
    for i in 0..10i64 {
        db.insert_rows(
            "dim",
            [Row::new(vec![Value::Integer(i), Value::varchar(format!("n{i}"))])],
        )
        .unwrap();
    }
    for i in 0..100i64 {
        db.insert_rows(
            "fact",
            [Row::new(vec![Value::Integer(i % 10), Value::Double(1.0)])],
        )
        .unwrap();
    }
    let r = db
        .query("SELECT dim.name, SUM(fact.v) AS s FROM dim, fact WHERE dim.k = fact.k GROUP BY dim.name")
        .unwrap();
    assert_eq!(r.rows.len(), 10);
    for row in &r.rows {
        assert_eq!(row.value(1).as_double(), Some(10.0));
    }
    // The join itself required no hash exchange (broadcast-free: dim is
    // already everywhere). Aggregation may still shuffle its partials.
    let join_exchanges = r
        .stats
        .operators()
        .iter()
        .filter(|o| o.label == "Exchange(Hash)")
        .count();
    assert!(join_exchanges <= 1, "{}", r.stats.display_table());
}

#[test]
fn load_imbalance_visible_with_few_blocks() {
    // §5 observed that ~100 blocks hashed onto 80 cores leave some cores
    // with several blocks: with hash partitioning of few rows, partition
    // sizes are uneven. We check the phenomenon is reproducible: hash 16
    // tiles onto 8 workers and observe a nonuniform partition histogram at
    // least sometimes — deterministic here by seeding.
    let db = Database::new(8);
    db.create_table(
        "t",
        Schema::from_pairs(&[("k", DataType::Integer), ("m", DataType::Matrix(None, None))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    for i in 0..16i64 {
        db.insert_rows(
            "t",
            [Row::new(vec![Value::Integer(i), Value::matrix(Matrix::zeros(4, 4))])],
        )
        .unwrap();
    }
    let table = db.catalog().table("t").unwrap();
    let sizes: Vec<usize> =
        (0..8).map(|p| table.read().partition(p).len()).collect();
    assert_eq!(sizes.iter().sum::<usize>(), 16);
    // Perfectly even would be all 2s; hashing almost surely is not.
    let max = *sizes.iter().max().unwrap();
    assert!(max >= 2, "{sizes:?}");
}
