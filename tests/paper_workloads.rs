//! The paper's three §5 workloads — Gram matrix, least-squares linear
//! regression, distance computation — in each representation the paper
//! compares (tuple-based, vector-based, block-based), validated at small
//! scale against the linear-algebra kernel directly.
//!
//! The SQL here is the same SQL the Figure 1–3 benchmark harness runs at
//! larger scale; these tests pin its *correctness*.

use lardb::{DataType, Database, Matrix, Partitioning, Row, Schema, Value};
use lardb_storage::gen;

const SEED: u64 = 4242;

/// Loads both representations of the same data set.
fn load_points(db: &Database, n: usize, dims: usize) {
    // Vector form: x_vm(id INTEGER, value VECTOR[dims])
    db.create_table(
        "x_vm",
        Schema::from_pairs(&[("id", DataType::Integer), ("value", DataType::Vector(None))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x_vm", gen::vector_rows(SEED, n, dims)).unwrap();

    // Tuple form: x(row_index, col_index, value)
    db.create_table(
        "x",
        Schema::from_pairs(&[
            ("row_index", DataType::Integer),
            ("col_index", DataType::Integer),
            ("value", DataType::Double),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x", gen::tuple_rows(SEED, n, dims)).unwrap();
}

/// The full data matrix (n × dims), for computing expected answers.
fn data_matrix(n: usize, dims: usize) -> Matrix {
    let rows = gen::vector_rows(SEED, n, dims);
    let mut m = Matrix::zeros(n, dims);
    for (i, r) in rows.iter().enumerate() {
        let v = r.value(1).as_vector().unwrap();
        m.row_mut(i).copy_from_slice(v.as_slice());
    }
    m
}

/// Installs `block_index` and the paper's §5 MLX blocking view (with block
/// id exposed, which the regression/distance queries join on).
fn create_blocks(db: &Database, n: usize, block: usize) {
    let nblocks = n.div_ceil(block);
    db.execute("CREATE TABLE block_index (mi INTEGER)").unwrap();
    for b in 0..nblocks {
        db.execute(&format!("INSERT INTO block_index VALUES ({b})")).unwrap();
    }
    db.execute(&format!(
        "CREATE VIEW MLX AS
         SELECT ROWMATRIX(label_vector(x.value, x.id - ind.mi*{block})) AS m
         FROM x_vm AS x, block_index AS ind
         WHERE x.id/{block} = ind.mi
         GROUP BY ind.mi"
    ))
    .unwrap();
    db.execute(&format!(
        "CREATE VIEW MLXI AS
         SELECT ROWMATRIX(label_vector(x.value, x.id - ind.mi*{block})) AS m, ind.mi AS mi
         FROM x_vm AS x, block_index AS ind
         WHERE x.id/{block} = ind.mi
         GROUP BY ind.mi"
    ))
    .unwrap();
}

// ---------------------------------------------------------------- Gram

#[test]
fn gram_vector_based_matches_kernel() {
    let (n, dims) = (30, 5);
    let db = Database::new(4);
    load_points(&db, n, dims);
    let r = db
        .query("SELECT SUM(outer_product(x.value, x.value)) AS g FROM x_vm AS x")
        .unwrap();
    let got = r.scalar().unwrap().as_matrix().unwrap().clone();
    let expected = data_matrix(n, dims).gram();
    assert!(got.approx_eq(&expected, 1e-9));
}

#[test]
fn gram_tuple_based_matches_kernel() {
    let (n, dims) = (20, 4);
    let db = Database::new(4);
    load_points(&db, n, dims);
    let r = db
        .query(
            "SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value) AS v
             FROM x AS x1, x AS x2
             WHERE x1.row_index = x2.row_index
             GROUP BY x1.col_index, x2.col_index",
        )
        .unwrap();
    assert_eq!(r.rows.len(), dims * dims);
    let expected = data_matrix(n, dims).gram();
    for row in &r.rows {
        let i = row.value(0).as_integer().unwrap() as usize;
        let j = row.value(1).as_integer().unwrap() as usize;
        let v = row.value(2).as_double().unwrap();
        assert!(
            (v - expected.get(i, j).unwrap()).abs() < 1e-9,
            "G[{i}][{j}] = {v}, expected {}",
            expected.get(i, j).unwrap()
        );
    }
}

#[test]
fn gram_block_based_matches_kernel() {
    let (n, dims, block) = (20, 4, 5);
    let db = Database::new(4);
    load_points(&db, n, dims);
    create_blocks(&db, n, block);
    let r = db
        .query("SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) AS g FROM mlx")
        .unwrap();
    let got = r.scalar().unwrap().as_matrix().unwrap().clone();
    let expected = data_matrix(n, dims).gram();
    assert!(got.approx_eq(&expected, 1e-9), "got {got:?}\nexpected {expected:?}");
}

#[test]
fn gram_blocking_handles_ragged_last_block() {
    // n not divisible by the block size: the last block is zero-padded, and
    // zero rows contribute nothing to XᵀX.
    let (n, dims, block) = (13, 3, 5);
    let db = Database::new(3);
    load_points(&db, n, dims);
    create_blocks(&db, n, block);
    let r = db
        .query("SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) AS g FROM mlx")
        .unwrap();
    let got = r.scalar().unwrap().as_matrix().unwrap().clone();
    let expected = data_matrix(n, dims).gram();
    assert!(got.approx_eq(&expected, 1e-9));
}

// ----------------------------------------------------- Linear regression

fn load_targets(db: &Database, n: usize, dims: usize) {
    db.create_table(
        "y",
        Schema::from_pairs(&[("i", DataType::Integer), ("y_i", DataType::Double)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("y", gen::regression_targets(SEED, n, dims, 0.0)).unwrap();
}

#[test]
fn regression_vector_based_recovers_beta() {
    let (n, dims) = (40, 4);
    let db = Database::new(4);
    load_points(&db, n, dims);
    load_targets(&db, n, dims);
    // The paper's §3.2 regression query, verbatim shape.
    let r = db
        .query(
            "SELECT matrix_vector_multiply(
                 matrix_inverse(SUM(outer_product(x.value, x.value))),
                 SUM(x.value * y.y_i)) AS beta
             FROM x_vm AS x, y
             WHERE x.id = y.i",
        )
        .unwrap();
    let beta = r.scalar().unwrap().as_vector().unwrap().clone();
    let truth = gen::true_beta(SEED, dims);
    assert!(
        beta.approx_eq(&truth, 1e-8),
        "beta {:?} vs truth {:?}",
        beta.as_slice(),
        truth.as_slice()
    );
}

#[test]
fn regression_block_based_recovers_beta() {
    let (n, dims, block) = (40, 4, 8);
    let db = Database::new(4);
    load_points(&db, n, dims);
    load_targets(&db, n, dims);
    create_blocks(&db, n, block);
    // Block the targets too: one VECTOR[block] per block id.
    db.execute(&format!(
        "CREATE VIEW YB AS
         SELECT VECTORIZE(label_scalar(y.y_i, y.i - ind.mi*{block})) AS yv, ind.mi AS mi
         FROM y, block_index AS ind
         WHERE y.i/{block} = ind.mi
         GROUP BY ind.mi"
    ))
    .unwrap();
    let r = db
        .query(
            "SELECT matrix_vector_multiply(
                 matrix_inverse(SUM(matrix_multiply(trans_matrix(b.m), b.m))),
                 SUM(matrix_vector_multiply(trans_matrix(b.m), t.yv))) AS beta
             FROM mlxi AS b, yb AS t
             WHERE b.mi = t.mi",
        )
        .unwrap();
    let beta = r.scalar().unwrap().as_vector().unwrap().clone();
    let truth = gen::true_beta(SEED, dims);
    assert!(beta.approx_eq(&truth, 1e-8));
}

#[test]
fn regression_tuple_based_normal_equations() {
    // Tuple-based XᵀX and Xᵀy (the expensive parts, as in the paper);
    // assembled and solved via the label machinery of §3.3.
    let (n, dims) = (30, 3);
    let db = Database::new(4);
    load_points(&db, n, dims);
    load_targets(&db, n, dims);

    db.execute(
        "CREATE VIEW XTX AS
         SELECT x1.col_index AS r, x2.col_index AS c, SUM(x1.value * x2.value) AS v
         FROM x AS x1, x AS x2
         WHERE x1.row_index = x2.row_index
         GROUP BY x1.col_index, x2.col_index",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW XTY AS
         SELECT x.col_index AS c, SUM(x.value * y.y_i) AS v
         FROM x, y
         WHERE x.row_index = y.i
         GROUP BY x.col_index",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW XTXM AS
         SELECT ROWMATRIX(label_vector(q.vec, q.r)) AS m
         FROM (SELECT VECTORIZE(label_scalar(v, c)) AS vec, r FROM xtx GROUP BY r) AS q",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW XTYV AS SELECT VECTORIZE(label_scalar(v, c)) AS vec FROM xty",
    )
    .unwrap();
    let r = db
        .query("SELECT solve(a.m, b.vec) AS beta FROM xtxm AS a, xtyv AS b")
        .unwrap();
    let beta = r.scalar().unwrap().as_vector().unwrap().clone();
    let truth = gen::true_beta(SEED, dims);
    assert!(beta.approx_eq(&truth, 1e-8));
}

// ------------------------------------------------------------- Distance

/// Expected result of the §5 distance computation, straight from the
/// kernel: d²(xi, x') = xiᵀ·A·x', minimum over x' ≠ xi, then the ids whose
/// minimum is the global maximum.
fn expected_distance_winners(n: usize, dims: usize) -> Vec<i64> {
    let x = data_matrix(n, dims);
    let a = gen::spd_matrix(SEED ^ 7, dims);
    let mut mins = vec![f64::INFINITY; n];
    for i in 0..n {
        let xi = x.row_vector(i).unwrap();
        let axi = a.matrix_vector_multiply(&xi).unwrap();
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = x.row_vector(j).unwrap().inner_product(&axi).unwrap();
            if d < mins[i] {
                mins[i] = d;
            }
        }
    }
    let best = mins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (0..n).filter(|&i| mins[i] == best).map(|i| i as i64).collect()
}

fn load_metric(db: &Database, dims: usize) {
    db.create_table(
        "matrixA",
        Schema::from_pairs(&[("val", DataType::Matrix(None, None))]),
        Partitioning::Replicated,
    )
    .unwrap();
    db.insert_rows(
        "matrixA",
        [Row::new(vec![Value::matrix(gen::spd_matrix(SEED ^ 7, dims))])],
    )
    .unwrap();
}

#[test]
fn distance_vector_based_matches_kernel() {
    let (n, dims) = (16, 3);
    let db = Database::new(4);
    load_points(&db, n, dims);
    load_metric(&db, dims);

    // The paper's MX + DISTANCESM structure (§5).
    db.execute(
        "CREATE VIEW MX AS
         SELECT x.id AS id, matrix_vector_multiply(a.val, x.value) AS mx_data
         FROM x_vm AS x, matrixA AS a",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW DISTANCESM AS
         SELECT a.id AS id, MIN(inner_product(mxx.mx_data, a.value)) AS dist
         FROM x_vm AS a, MX AS mxx
         WHERE a.id <> mxx.id
         GROUP BY a.id",
    )
    .unwrap();
    let r = db
        .query(
            "SELECT d.id FROM distancesm AS d,
                    (SELECT MAX(dist) AS mx FROM distancesm) AS m
             WHERE d.dist = m.mx",
        )
        .unwrap();
    let mut got: Vec<i64> =
        r.rows.iter().map(|row| row.value(0).as_integer().unwrap()).collect();
    got.sort();
    assert_eq!(got, expected_distance_winners(n, dims));
}

#[test]
fn distance_block_based_matches_kernel() {
    // block deliberately does not divide n: the last block is ragged, and
    // the diagonal mask must adapt to its size.
    let (n, dims, block) = (16, 3, 5);
    let db = Database::new(4);
    load_points(&db, n, dims);
    create_blocks(&db, n, block);
    db.create_table(
        "MM",
        Schema::from_pairs(&[("mapping", DataType::Matrix(None, None))]),
        Partitioning::Replicated,
    )
    .unwrap();
    db.insert_rows(
        "MM",
        [Row::new(vec![Value::matrix(gen::spd_matrix(SEED ^ 7, dims))])],
    )
    .unwrap();

    // Cross-block distance matrices (the paper's DISTANCES view).
    db.execute(
        "CREATE VIEW DISTANCES AS
         SELECT mxx.mi AS id1, mx.mi AS id2,
                matrix_multiply(mxx.m,
                    matrix_multiply(mp.mapping, trans_matrix(mx.m))) AS dm
         FROM MLXI AS mx, MLXI AS mxx, MM AS mp
         WHERE mxx.mi <> mx.mi",
    )
    .unwrap();
    // Same-block distances with +infinity on the diagonal so MIN skips
    // d(x, x); the mask is sized from the (possibly ragged) block itself.
    db.execute(
        "CREATE VIEW SELFDM AS
         SELECT mxx.mi AS id1,
                matrix_multiply(mxx.m,
                    matrix_multiply(mp.mapping, trans_matrix(mxx.m))) AS dm
         FROM MLXI AS mxx, MM AS mp",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW SELFDIST AS
         SELECT id1, dm + diag_matrix(diag(dm) * 0.0 + 1e300) AS dm
         FROM selfdm",
    )
    .unwrap();
    // Per-block per-point minima: element-wise MIN over row_min vectors.
    db.execute(
        "CREATE VIEW CROSSMINS AS
         SELECT q.id1 AS bid, MIN(q.v) AS mv
         FROM (SELECT id1, row_min(dm) AS v FROM distances) AS q
         GROUP BY q.id1",
    )
    .unwrap();
    db.execute("CREATE VIEW SELFMINS AS SELECT id1 AS bid, row_min(dm) AS mv FROM selfdist")
        .unwrap();

    // Combine in the driver ("a series of operations on matrices", §5):
    // per point min(self, cross), then global argmax.
    let combined = db
        .query(
            "SELECT a.bid AS bid, a.mv AS self_mv, b.mv AS cross_mv
             FROM selfmins AS a, crossmins AS b
             WHERE a.bid = b.bid",
        )
        .unwrap();
    let mut best_val = f64::NEG_INFINITY;
    let mut winners: Vec<i64> = Vec::new();
    for row in &combined.rows {
        let bid = row.value(0).as_integer().unwrap();
        let s = row.value(1).as_vector().unwrap();
        let c = row.value(2).as_vector().unwrap();
        for k in 0..s.len() {
            let id = bid * block as i64 + k as i64;
            if id >= n as i64 {
                continue;
            }
            let v = s.get(k).unwrap().min(c.get(k).unwrap());
            if v > best_val {
                best_val = v;
                winners = vec![id];
            } else if v == best_val {
                winners.push(id);
            }
        }
    }
    winners.sort();
    assert_eq!(winners, expected_distance_winners(n, dims));
}

#[test]
fn distance_tuple_based_matches_kernel_tiny() {
    // The paper marks tuple-based distance as "Fail" at scale; at toy scale
    // it still checks the pure-relational formulation's correctness.
    let (n, dims) = (8, 2);
    let db = Database::new(2);
    load_points(&db, n, dims);
    let a = gen::spd_matrix(SEED ^ 7, dims);
    db.execute("CREATE TABLE amat (r INTEGER, c INTEGER, v DOUBLE)").unwrap();
    for i in 0..dims {
        for j in 0..dims {
            db.execute(&format!(
                "INSERT INTO amat VALUES ({i}, {j}, {})",
                a.get(i, j).unwrap()
            ))
            .unwrap();
        }
    }
    // A·x' per point, tuple-wise.
    db.execute(
        "CREATE VIEW AX AS
         SELECT x.row_index AS pid, amat.r AS dim, SUM(amat.v * x.value) AS v
         FROM amat, x
         WHERE amat.c = x.col_index
         GROUP BY x.row_index, amat.r",
    )
    .unwrap();
    // d(i, j) = Σ_dim x_i[dim]·(A·x_j)[dim]
    db.execute(
        "CREATE VIEW D AS
         SELECT xi.row_index AS i, axj.pid AS j, SUM(xi.value * axj.v) AS d
         FROM x AS xi, ax AS axj
         WHERE xi.col_index = axj.dim AND xi.row_index <> axj.pid
         GROUP BY xi.row_index, axj.pid",
    )
    .unwrap();
    db.execute("CREATE VIEW MINS AS SELECT i, MIN(d) AS md FROM d GROUP BY i")
        .unwrap();
    let r = db
        .query(
            "SELECT mins.i FROM mins, (SELECT MAX(md) AS mx FROM mins) AS q
             WHERE mins.md = q.mx",
        )
        .unwrap();
    let mut got: Vec<i64> =
        r.rows.iter().map(|row| row.value(0).as_integer().unwrap()).collect();
    got.sort();
    assert_eq!(got, expected_distance_winners(n, dims));
}

// ------------------------------------------------------------ Figure 4

#[test]
fn figure4_stats_attribute_join_and_aggregation() {
    // The per-operator statistics behind Figure 4: the tuple-based Gram
    // query must attribute measurable work to both the join and the
    // aggregation, and the vector-based one to the aggregation alone.
    let (n, dims) = (200, 8);
    let db = Database::new(4);
    load_points(&db, n, dims);

    let tuple = db
        .query(
            "SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value) AS v
             FROM x AS x1, x AS x2
             WHERE x1.row_index = x2.row_index
             GROUP BY x1.col_index, x2.col_index",
        )
        .unwrap();
    let labels: Vec<String> =
        tuple.stats.operators().iter().map(|o| o.label.clone()).collect();
    assert!(labels.iter().any(|l| l.contains("Join")), "{labels:?}");
    assert!(labels.iter().any(|l| l.starts_with("HashAggregate")), "{labels:?}");
    // The fused join processed n·dims² joined tuples.
    let join_rows: usize = tuple
        .stats
        .operators()
        .iter()
        .filter(|o| o.label.contains("Join"))
        .map(|o| o.rows_out)
        .sum();
    assert_eq!(join_rows, n * dims * dims);

    let vector = db
        .query("SELECT SUM(outer_product(x.value, x.value)) AS g FROM x_vm AS x")
        .unwrap();
    let vlabels: Vec<String> =
        vector.stats.operators().iter().map(|o| o.label.clone()).collect();
    assert!(!vlabels.iter().any(|l| l.contains("Join")), "{vlabels:?}");
    assert!(vlabels.iter().any(|l| l.starts_with("HashAggregate")), "{vlabels:?}");
}
