//! The paper's §2.2/§2.3 motivating example: distances under a Riemannian
//! metric `d²_A(x_i, x') = (x_i − x')ᵀ·A·(x_i − x')`, written both ways —
//! the tortured pure-tuple SQL of §2.2 and the three-line extended SQL of
//! §2.3 — and checked against each other.
//!
//! ```text
//! cargo run --release -p lardb --example riemannian_knn
//! ```

use lardb::{DataType, Database, Partitioning, Row, Schema, Value};
use lardb_storage::gen;

const N: usize = 60;
const DIMS: usize = 8;
const QUERY_POINT: i64 = 7;

fn main() {
    let db = Database::new(4);

    // ---- data in both representations ----------------------------------
    // Normalized: data(pointID, dimID, value), matrixA(rowID, colID, value)
    db.execute("CREATE TABLE data (pointID INTEGER, dimID INTEGER, value DOUBLE)").unwrap();
    let mut tuple_rows = gen::tuple_rows(1, N, DIMS);
    db.insert_rows("data", tuple_rows.drain(..)).unwrap();

    let a = gen::spd_matrix(2, DIMS);
    db.execute("CREATE TABLE matrixA (rowID INTEGER, colID INTEGER, value DOUBLE)").unwrap();
    for i in 0..DIMS {
        for j in 0..DIMS {
            db.execute(&format!(
                "INSERT INTO matrixA VALUES ({i}, {j}, {})",
                a.get(i, j).unwrap()
            ))
            .unwrap();
        }
    }

    // De-normalized: data_v(pointID, val VECTOR), matrixA_m(val MATRIX)
    db.create_table(
        "data_v",
        Schema::from_pairs(&[("pointID", DataType::Integer), ("val", DataType::Vector(Some(DIMS)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("data_v", gen::vector_rows(1, N, DIMS)).unwrap();
    db.create_table(
        "matrixA_m",
        Schema::from_pairs(&[("val", DataType::Matrix(Some(DIMS), Some(DIMS)))]),
        Partitioning::Replicated,
    )
    .unwrap();
    db.insert_rows("matrixA_m", [Row::new(vec![Value::matrix(a)])]).unwrap();

    // ---- §2.2: the pure-tuple formulation (view + nested subquery) -----
    db.execute(&format!(
        "CREATE VIEW xDiff AS
         SELECT x2.pointID AS pointID, x2.dimID AS dimID, x1.value - x2.value AS value
         FROM data AS x1, data AS x2
         WHERE x1.pointID = {QUERY_POINT} AND x1.dimID = x2.dimID"
    ))
    .unwrap();
    let tuple_sql = "SELECT x.pointID, SUM(firstPart.value * x.value) AS dist
         FROM (SELECT x.pointID AS pointID, a.colID AS colID,
                      SUM(a.value * x.value) AS value
               FROM xDiff AS x, matrixA AS a
               WHERE x.dimID = a.rowID
               GROUP BY x.pointID, a.colID) AS firstPart,
              xDiff AS x
         WHERE firstPart.colID = x.dimID AND firstPart.pointID = x.pointID
         GROUP BY x.pointID";
    let t0 = std::time::Instant::now();
    let tuple_result = db.query(tuple_sql).unwrap();
    let tuple_time = t0.elapsed();

    // ---- §2.3: the extended-SQL formulation -----------------------------
    let vector_sql = format!(
        "SELECT x2.pointID,
                inner_product(
                    matrix_vector_multiply(a.val, x1.val - x2.val),
                    x1.val - x2.val) AS dist
         FROM data_v AS x1, data_v AS x2, matrixA_m AS a
         WHERE x1.pointID = {QUERY_POINT}"
    );
    let t0 = std::time::Instant::now();
    let vector_result = db.query(&vector_sql).unwrap();
    let vector_time = t0.elapsed();

    // ---- compare ---------------------------------------------------------
    let collect = |rows: &[Row]| -> Vec<(i64, f64)> {
        let mut v: Vec<(i64, f64)> = rows
            .iter()
            .map(|r| (r.value(0).as_integer().unwrap(), r.value(1).as_double().unwrap()))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    };
    let t = collect(&tuple_result.rows);
    let v = collect(&vector_result.rows);
    assert_eq!(t.len(), v.len());
    for ((ti, td), (vi, vd)) in t.iter().zip(&v) {
        assert_eq!(ti, vi);
        assert!((td - vd).abs() < 1e-8, "point {ti}: {td} vs {vd}");
    }

    // nearest neighbours of the query point (kNN in metric A)
    let mut by_dist = v.clone();
    by_dist.retain(|(id, _)| *id != QUERY_POINT);
    by_dist.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("both formulations agree on all {} distances ✓\n", v.len());
    println!("5 nearest neighbours of point {QUERY_POINT} under metric A:");
    for (id, d) in by_dist.iter().take(5) {
        println!("  point {id:>3}  d² = {d:.4}");
    }
    println!(
        "\ntuple-based SQL:  {:>8.1} ms  (1 view + nested subquery, 4 joins, 2 GROUP BYs)",
        tuple_time.as_secs_f64() * 1e3
    );
    println!(
        "extended SQL:     {:>8.1} ms  (one SELECT over VECTOR/MATRIX columns)",
        vector_time.as_secs_f64() * 1e3
    );
}
