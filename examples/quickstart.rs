//! Quickstart: the extended relational model in five minutes.
//!
//! ```text
//! cargo run --release -p lardb --example quickstart
//! ```
//!
//! Walks through the paper's §3: declaring VECTOR/MATRIX columns, the
//! overloaded arithmetic, the label machinery (`VECTORIZE`, `ROWMATRIX`),
//! and a first aggregate over linear-algebra values.

use lardb::{DataType, Database, Partitioning, Row, Schema, Value, Vector};

fn main() {
    // A database over 4 simulated shared-nothing workers.
    let db = Database::new(4);

    // --- §3.1: new column types -----------------------------------------
    db.execute("CREATE TABLE m (mat MATRIX[3][3], vec VECTOR[3])").unwrap();
    println!("created table m (mat MATRIX[3][3], vec VECTOR[3])");

    // Vectors and matrices are loaded programmatically (there is no SQL
    // literal syntax for them, same as SimSQL).
    db.insert_rows(
        "m",
        [Row::new(vec![
            Value::matrix(lardb::Matrix::identity(3).scalar_mul(2.0)),
            Value::vector(Vector::from_slice(&[1.0, 2.0, 3.0])),
        ])],
    )
    .unwrap();

    // --- §3.2: built-ins and overloaded arithmetic ----------------------
    let r = db
        .query(
            "SELECT matrix_vector_multiply(mat, vec) AS mv,
                    vec * 10.0 + vec AS scaled,
                    inner_product(vec, vec) AS nn
             FROM m",
        )
        .unwrap();
    println!("matrix_vector_multiply(2·I, v) = {}", r.rows[0].value(0));
    println!("v * 10 + v                     = {}", r.rows[0].value(1));
    println!("inner_product(v, v)            = {}", r.rows[0].value(2));

    // A size mismatch is a *compile-time* error (§3.1):
    db.execute("CREATE TABLE bad (mat MATRIX[3][3], vec VECTOR[7])").unwrap();
    let err = db.query("SELECT matrix_vector_multiply(mat, vec) AS no FROM bad");
    println!("\nMATRIX[3][3] × VECTOR[7] fails to compile:\n  {}", err.unwrap_err());

    // --- §3.3: from rows to vectors to matrices -------------------------
    db.execute("CREATE TABLE triples (row INTEGER, col INTEGER, value DOUBLE)").unwrap();
    for r in 0..3i64 {
        for c in 0..3i64 {
            db.execute(&format!(
                "INSERT INTO triples VALUES ({r}, {c}, {})",
                (r * 3 + c) as f64
            ))
            .unwrap();
        }
    }
    db.execute(
        "CREATE VIEW vecs AS
         SELECT VECTORIZE(label_scalar(value, col)) AS vec, row
         FROM triples GROUP BY row",
    )
    .unwrap();
    let r = db.query("SELECT ROWMATRIX(label_vector(vec, row)) AS m FROM vecs").unwrap();
    println!("\nROWMATRIX over VECTORIZEd rows: {}", r.rows[0].value(0));

    // --- a first LA aggregate: the Gram matrix --------------------------
    db.create_table(
        "points",
        Schema::from_pairs(&[("id", DataType::Integer), ("x", DataType::Vector(Some(3)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    for i in 0..100i64 {
        db.insert_rows(
            "points",
            [Row::new(vec![
                Value::Integer(i),
                Value::vector(Vector::from_fn(3, |j| ((i + j as i64) % 5) as f64)),
            ])],
        )
        .unwrap();
    }
    let r = db
        .query("SELECT SUM(outer_product(x, x)) AS gram FROM points")
        .unwrap();
    println!("\nGram matrix of 100 points: {}", r.rows[0].value(0));
    println!(
        "\nquery ran on {} workers; {} bytes crossed worker boundaries",
        db.workers(),
        r.stats.total_bytes_shuffled()
    );

    // EXPLAIN shows the optimized logical plan and the physical plan with
    // exchange operators.
    println!("\nEXPLAIN SELECT SUM(outer_product(x, x)) FROM points:");
    println!("{}", db.explain("SELECT SUM(outer_product(x, x)) AS g FROM points").unwrap());
}
