//! Least-squares linear regression in one SQL statement — the paper's §3.2
//! example, on synthetic data with known coefficients, in both storage
//! layouts §3.3 discusses (set-of-vectors vs single-matrix).
//!
//! ```text
//! cargo run --release -p lardb --example linear_regression
//! ```

use lardb::{DataType, Database, Partitioning, Schema, Vector};
use lardb_storage::gen;

const N: usize = 5_000;
const DIMS: usize = 12;
const SEED: u64 = 99;

fn main() {
    let db = Database::new(4);

    // X as a set of vectors, y as scalars (the paper's first layout).
    db.create_table(
        "X",
        Schema::from_pairs(&[("i", DataType::Integer), ("x_i", DataType::Vector(Some(DIMS)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("X", gen::vector_rows(SEED, N, DIMS)).unwrap();

    db.create_table(
        "y",
        Schema::from_pairs(&[("i", DataType::Integer), ("y_i", DataType::Double)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("y", gen::regression_targets(SEED, N, DIMS, 0.05)).unwrap();

    // β̂ = (Σ xᵢxᵢᵀ)⁻¹ (Σ xᵢyᵢ) — the §3.2 query, verbatim shape.
    let t0 = std::time::Instant::now();
    let r = db
        .query(
            "SELECT matrix_vector_multiply(
                 matrix_inverse(SUM(outer_product(X.x_i, X.x_i))),
                 SUM(X.x_i * y_i)) AS beta
             FROM X, y
             WHERE X.i = y.i",
        )
        .unwrap();
    let elapsed = t0.elapsed();
    let beta = r.rows[0].value(0).as_vector().unwrap().clone();

    let truth = gen::true_beta(SEED, DIMS);
    println!("n = {N}, dims = {DIMS}, noise = ±0.05");
    println!("{:<6} {:>12} {:>12} {:>10}", "coef", "estimated", "true", "error");
    let mut max_err: f64 = 0.0;
    for i in 0..DIMS {
        let (e, t) = (beta.get(i).unwrap(), truth.get(i).unwrap());
        max_err = max_err.max((e - t).abs());
        println!("β[{i:<2}]  {e:>12.5} {t:>12.5} {:>10.2e}", (e - t).abs());
    }
    println!("\nmax |error| = {max_err:.2e}   solved in {:.1} ms", elapsed.as_secs_f64() * 1e3);
    assert!(max_err < 0.05, "estimator should be close to the generating β");

    // The alternative layout (§3.3): X as one MATRIX, y as one VECTOR.
    // Build them *inside the database* with the construction aggregates.
    db.execute(
        "CREATE VIEW Xmat AS
         SELECT ROWMATRIX(label_vector(x_i, i)) AS mat FROM X",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW yvec AS SELECT VECTORIZE(label_scalar(y_i, i)) AS vec FROM y",
    )
    .unwrap();
    let r2 = db
        .query(
            "SELECT matrix_vector_multiply(
                 matrix_inverse(matrix_multiply(trans_matrix(mat), mat)),
                 matrix_vector_multiply(trans_matrix(mat), vec)) AS beta
             FROM Xmat, yvec",
        )
        .unwrap();
    let beta2 = r2.rows[0].value(0).as_vector().unwrap().clone();
    let diff: Vector = beta.sub(&beta2).unwrap();
    println!(
        "single-matrix layout agrees with vector layout: max delta = {:.2e}",
        diff.as_slice().iter().fold(0.0f64, |m, x| m.max(x.abs()))
    );
}
