//! §3.4 — a matrix too big for one "machine", stored as a relation of
//! tiles, multiplied with plain SQL (join + GROUP BY aggregation), and the
//! effect of tile placement on shuffle volume.
//!
//! ```text
//! cargo run --release -p lardb --example distributed_matmul
//! ```

use lardb::{DataType, Database, Partitioning, Schema};
use lardb_storage::gen;

const TILES: usize = 4; // 4×4 grid of tiles
const TILE: usize = 100; // each tile 100×100 → full matrix 400×400

const MULTIPLY: &str = "SELECT lhs.tileRow, rhs.tileCol,
        SUM(matrix_multiply(lhs.mat, rhs.mat)) AS mat
 FROM bigMatrix AS lhs, anotherBigMat AS rhs
 WHERE lhs.tileCol = rhs.tileRow
 GROUP BY lhs.tileRow, rhs.tileCol";

fn tile_schema() -> Schema {
    Schema::from_pairs(&[
        ("tileRow", DataType::Integer),
        ("tileCol", DataType::Integer),
        ("mat", DataType::Matrix(Some(TILE), Some(TILE))),
    ])
}

fn run(left_part: Partitioning, right_part: Partitioning, label: &str) {
    let db = Database::new(8);
    db.create_table("bigMatrix", tile_schema(), left_part).unwrap();
    db.create_table("anotherBigMat", tile_schema(), right_part).unwrap();
    let a_rows = gen::tiled_matrix_rows(41, TILES, TILE);
    let b_rows = gen::tiled_matrix_rows(42, TILES, TILE);
    let a = gen::assemble_tiles(&a_rows, TILES, TILE);
    let b = gen::assemble_tiles(&b_rows, TILES, TILE);
    db.insert_rows("bigMatrix", a_rows).unwrap();
    db.insert_rows("anotherBigMat", b_rows).unwrap();

    let t0 = std::time::Instant::now();
    let result = db.query(MULTIPLY).unwrap();
    let elapsed = t0.elapsed();

    // Verify every output tile against a serial kernel multiply.
    let expected = a.multiply(&b).unwrap();
    for row in &result.rows {
        let tr = row.value(0).as_integer().unwrap() as usize;
        let tc = row.value(1).as_integer().unwrap() as usize;
        let m = row.value(2).as_matrix().unwrap();
        let sub = expected.submatrix(tr * TILE, tc * TILE, TILE, TILE).unwrap();
        assert!(m.approx_eq(&sub, 1e-9), "tile ({tr},{tc}) wrong");
    }
    println!(
        "{label:<40} {:>4} tiles  {:>8.1} ms  {:>8.2} MB shuffled   ✓ matches kernel",
        result.rows.len(),
        elapsed.as_secs_f64() * 1e3,
        result.stats.total_bytes_shuffled() as f64 / 1e6
    );
}

fn main() {
    println!(
        "multiplying two {n}×{n} dense matrices stored as {TILES}×{TILES} grids of \
         {TILE}×{TILE} tiles, on 8 workers\n",
        n = TILES * TILE
    );
    // Random placement: both joins sides must shuffle (the §2.1 scenario
    // where neither input is pre-partitioned).
    run(Partitioning::RoundRobin, Partitioning::RoundRobin, "round-robin placement (both shuffle)");
    // The paper's §2.1 setup: R round-robin on its *row* id — partition the
    // left on its join key (tileCol) and the right on tileRow; the
    // optimizer detects co-location and skips both exchanges.
    run(Partitioning::Hash(1), Partitioning::Hash(0), "join-key placement (no join shuffle)");
}
